"""Efficiency measurement — the paper's timing protocol (§4.4).

"To have a warm cache, we conducted 5 consecutive runs for each query and
considered the average of the last 3 runs for each technique."
:class:`TimingProtocol` encapsulates that: call an engine function
``n_runs`` times, average the timings of the last ``n_keep`` runs, and
keep the final run's result object (answers and memory counts are
deterministic across runs, so any run's result is representative).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, TypeVar

from repro.errors import ExperimentError

R = TypeVar("R")


@dataclass(frozen=True)
class TimedOutcome:
    """The averaged timing plus the last run's result object."""

    result: object
    mean_seconds: float
    all_seconds: tuple[float, ...]


@dataclass(frozen=True)
class TimingProtocol:
    """Run-and-average harness mirroring §4.4.

    ``n_runs=5, n_keep=3`` is the paper's protocol; tests use smaller
    values to stay fast.
    """

    n_runs: int = 5
    n_keep: int = 3

    def __post_init__(self) -> None:
        if self.n_runs < 1:
            raise ExperimentError(f"n_runs must be >= 1, got {self.n_runs}")
        if not 1 <= self.n_keep <= self.n_runs:
            raise ExperimentError(
                f"n_keep must be in 1..{self.n_runs}, got {self.n_keep}"
            )

    def measure(
        self,
        run: Callable[[], R],
        seconds_of: Callable[[R], float],
    ) -> TimedOutcome:
        """Execute *run* ``n_runs`` times; average the last ``n_keep``
        values of ``seconds_of(result)``."""
        results: list[R] = [run() for _ in range(self.n_runs)]
        timings = tuple(seconds_of(result) for result in results)
        kept = timings[-self.n_keep:]
        return TimedOutcome(
            result=results[-1],
            mean_seconds=sum(kept) / len(kept),
            all_seconds=timings,
        )
