"""Quality and efficiency metrics (§4.3).

* :mod:`~repro.metrics.quality` — precision/recall, prediction accuracy
  ground truth, score error.
* :mod:`~repro.metrics.efficiency` — the paper's timing protocol (5 runs,
  average of the last 3) and memory-object accounting helpers.
* :mod:`~repro.metrics.report` — plain-text table rendering.
"""

from repro.metrics.quality import (
    precision_at_k,
    required_relaxations,
    score_error,
)
from repro.metrics.efficiency import TimingProtocol

__all__ = [
    "TimingProtocol",
    "precision_at_k",
    "required_relaxations",
    "score_error",
]
