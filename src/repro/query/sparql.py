"""A mini-SPARQL parser covering the fragment the paper uses.

Grammar (case-insensitive keywords)::

    query      := SELECT projection WHERE '{' body '}'
    projection := '*' | variable+
    body       := pattern ('.' pattern)* '.'?
    pattern    := term term term
    term       := variable | '<' iri '>' | quoted | bare
    variable   := '?' NAME
    quoted     := "'" chars "'" | '"' chars '"'

Angle brackets and quotes are both accepted for constants because the
paper itself mixes ``'rdf:type'`` (quoted) with ``<singer>`` (angled).
"""

from __future__ import annotations

import re
from typing import Iterator, NamedTuple

from repro.errors import SparqlSyntaxError
from repro.kg.pattern import TriplePattern, Variable
from repro.query.query import TriplePatternQuery


class _Token(NamedTuple):
    kind: str
    value: str
    position: int


_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<LBRACE>\{)
  | (?P<RBRACE>\})
  | (?P<DOT>\.(?!\w))
  | (?P<STAR>\*)
  | (?P<VAR>\?[A-Za-z_][A-Za-z0-9_]*)
  | (?P<ANGLED><[^<>\s]+>)
  | (?P<SQUOTED>'[^']*')
  | (?P<DQUOTED>"[^"]*")
  | (?P<BARE>[^\s{}'"<>]+)
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> Iterator[_Token]:
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise SparqlSyntaxError(
                f"unexpected character {text[position]!r}", position
            )
        kind = match.lastgroup or ""
        if kind != "WS":
            yield _Token(kind, match.group(), position)
        position = match.end()


class _Parser:
    def __init__(self, text: str) -> None:
        self._text = text
        self._tokens = list(_tokenize(text))
        self._pos = 0

    # ------------------------------------------------------------------
    def _peek(self) -> _Token | None:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def _next(self, expected: str | None = None) -> _Token:
        token = self._peek()
        if token is None:
            raise SparqlSyntaxError("unexpected end of query", len(self._text))
        if expected is not None and token.kind != expected:
            raise SparqlSyntaxError(
                f"expected {expected}, got {token.value!r}", token.position
            )
        self._pos += 1
        return token

    def _expect_keyword(self, keyword: str) -> None:
        token = self._next()
        if token.kind != "BARE" or token.value.upper() != keyword:
            raise SparqlSyntaxError(
                f"expected keyword {keyword}, got {token.value!r}", token.position
            )

    # ------------------------------------------------------------------
    def parse(self) -> TriplePatternQuery:
        self._expect_keyword("SELECT")
        projection = self._parse_projection()
        self._expect_keyword("WHERE")
        self._next("LBRACE")
        patterns = self._parse_body()
        self._next("RBRACE")
        trailing = self._peek()
        if trailing is not None:
            raise SparqlSyntaxError(
                f"trailing input after query: {trailing.value!r}", trailing.position
            )
        if projection is None:  # SELECT *
            return TriplePatternQuery(patterns)
        return TriplePatternQuery(patterns, projection)

    def _parse_projection(self) -> list[Variable] | None:
        token = self._peek()
        if token is None:
            raise SparqlSyntaxError("unexpected end of query", len(self._text))
        if token.kind == "STAR":
            self._next()
            return None
        variables: list[Variable] = []
        while True:
            token = self._peek()
            if token is None or token.kind != "VAR":
                break
            self._next()
            variables.append(Variable(token.value[1:]))
        if not variables:
            raise SparqlSyntaxError(
                "projection must be '*' or one or more variables",
                token.position if token else len(self._text),
            )
        return variables

    def _parse_body(self) -> list[TriplePattern]:
        patterns: list[TriplePattern] = []
        while True:
            token = self._peek()
            if token is None:
                raise SparqlSyntaxError("unterminated WHERE block", len(self._text))
            if token.kind == "RBRACE":
                break
            patterns.append(self._parse_pattern())
            token = self._peek()
            if token is not None and token.kind == "DOT":
                self._next()
        if not patterns:
            raise SparqlSyntaxError("empty WHERE block", len(self._text))
        return patterns

    def _parse_pattern(self) -> TriplePattern:
        terms = [self._parse_term() for _ in range(3)]
        return TriplePattern(*terms)

    def _parse_term(self) -> str | Variable:
        token = self._next()
        if token.kind == "VAR":
            return Variable(token.value[1:])
        if token.kind == "ANGLED":
            return token.value[1:-1]
        if token.kind in ("SQUOTED", "DQUOTED"):
            inner = token.value[1:-1]
            if not inner:
                raise SparqlSyntaxError("empty quoted term", token.position)
            return inner
        if token.kind == "BARE":
            if token.value.upper() in ("SELECT", "WHERE"):
                raise SparqlSyntaxError(
                    f"keyword {token.value!r} found where a term was expected",
                    token.position,
                )
            return token.value
        raise SparqlSyntaxError(
            f"expected a term, got {token.value!r}", token.position
        )


def parse_sparql(text: str) -> TriplePatternQuery:
    """Parse *text* into a :class:`TriplePatternQuery`.

    >>> q = parse_sparql("SELECT ?s WHERE { ?s 'rdf:type' <singer> }")
    >>> len(q)
    1
    """
    if not isinstance(text, str) or not text.strip():
        raise SparqlSyntaxError("query text must be a non-empty string")
    return _Parser(text).parse()


def format_sparql(query: TriplePatternQuery, indent: str = "  ") -> str:
    """Pretty-print *query* in the paper's style."""

    def term(t: object) -> str:
        if isinstance(t, Variable):
            return str(t)
        return f"<{t}>"

    lines = [f"SELECT {' '.join(str(v) for v in query.projection)} WHERE{{"]
    body = [
        f"{indent}{term(p.subject)} {term(p.predicate)} {term(p.object)}"
        for p in query.patterns
    ]
    lines.append(".\n".join(body))
    lines.append("}")
    return "\n".join(lines)
