"""Relaxed-query construction (Definition 8) and relaxation-space helpers.

Given a query ``Q`` and weighted relaxation rules ``r = (q, q', w)``, a
relaxed query replaces ``q`` by ``q'``; the scores of answers obtained
through the relaxation are multiplied by ``w``, compounding over multiple
relaxations.  This module builds single- and multi-step relaxed queries and
enumerates the cross-product space (the "48 unique queries" of the paper's
running example).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.errors import RelaxationError
from repro.kg.pattern import TriplePattern
from repro.query.query import TriplePatternQuery
from repro.relax.rules import RelaxationRule, RuleSet


@dataclass(frozen=True)
class RelaxedQuery:
    """A concrete relaxed variant of an original query.

    ``weight`` is the product of the applied rules' weights; answer scores
    computed against the variant are multiplied by it (Definition 8).
    ``applied`` records, per original pattern index, the rule used (or
    ``None`` when the original pattern is kept).

    The variant is exposed as :attr:`slot_patterns` — one pattern per
    original query *slot* — rather than a set-semantics query, because two
    different slots may relax to the same pattern (e.g. both ``singer``
    and ``guitarist`` relax to ``musician``).  Evaluation then still
    charges one score contribution per slot, which is exactly what the
    operator engines (one Incremental Merge per slot) do.
    """

    original: TriplePatternQuery
    weight: float
    applied: tuple[RelaxationRule | None, ...]

    @property
    def slot_patterns(self) -> tuple[TriplePattern, ...]:
        """The variant's pattern per original slot."""
        return tuple(
            rule.range if rule is not None else pattern
            for pattern, rule in zip(self.original.patterns, self.applied)
        )

    @property
    def query(self) -> TriplePatternQuery | None:
        """Set-semantics view, or ``None`` when slots collide."""
        patterns = self.slot_patterns
        if len(set(patterns)) != len(patterns):
            return None
        return TriplePatternQuery(
            patterns, self.original.projection, self.original.name
        )

    @property
    def relaxed_pattern_indexes(self) -> tuple[int, ...]:
        return tuple(i for i, rule in enumerate(self.applied) if rule is not None)

    @property
    def n_relaxed(self) -> int:
        return len(self.relaxed_pattern_indexes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RelaxedQuery(weight={self.weight:.3f}, "
            f"relaxed={list(self.relaxed_pattern_indexes)})"
        )


def apply_rule(query: TriplePatternQuery, rule: RelaxationRule) -> TriplePatternQuery:
    """Apply one rule (Definition 8's ``(Q \\ q) ∪ q'``).

    Raises :class:`RelaxationError` if the rule's domain is not in *query*.
    """
    if rule.domain not in query.patterns:
        raise RelaxationError(f"rule domain {rule.domain} not in query")
    return query.replace(rule.domain, rule.range)


def relax_single(
    query: TriplePatternQuery, pattern: TriplePattern, rules: RuleSet
) -> Iterator[RelaxedQuery]:
    """All single-step relaxations of *pattern* within *query*."""
    if pattern not in query.patterns:
        raise RelaxationError(f"pattern {pattern} not in query")
    idx = query.index_of(pattern)
    applied_base: list[RelaxationRule | None] = [None] * len(query)
    for rule in rules.for_pattern(pattern):
        applied = list(applied_base)
        applied[idx] = rule
        yield RelaxedQuery(
            original=query,
            weight=rule.weight,
            applied=tuple(applied),
        )


def enumerate_space(
    query: TriplePatternQuery,
    rules: RuleSet,
    max_variants: int | None = None,
) -> list[RelaxedQuery]:
    """Enumerate the full cross-product relaxation space of *query*.

    Each pattern independently either stays original or is replaced by one
    of its relaxations; the space size is ``prod(1 + |relaxations(q_i)|)``
    (48 for the paper's running example: 4·2·3·2).  The original query is
    included (weight 1.0, nothing applied).  Results are ordered by
    descending weight, then by fewer relaxations, then stable.

    ``max_variants`` caps the output after ordering (``None`` = no cap).
    """
    options_per_pattern: list[list[RelaxationRule | None]] = []
    for pattern in query.patterns:
        options: list[RelaxationRule | None] = [None]
        options.extend(rules.for_pattern(pattern))
        options_per_pattern.append(options)

    variants: list[RelaxedQuery] = []
    for combo in itertools.product(*options_per_pattern):
        weight = 1.0
        for rule in combo:
            if rule is not None:
                weight *= rule.weight
        variants.append(RelaxedQuery(original=query, weight=weight, applied=combo))
    variants.sort(key=lambda rq: (-rq.weight, rq.n_relaxed))
    if max_variants is not None:
        variants = variants[:max_variants]
    return variants


def space_size(query: TriplePatternQuery, rules: RuleSet) -> int:
    """Size of the cross-product space without materialising it."""
    size = 1
    for pattern in query.patterns:
        size *= 1 + len(rules.for_pattern(pattern))
    return size


def top_weighted_relaxation(
    query: TriplePatternQuery, pattern: TriplePattern, rules: RuleSet
) -> RelaxationRule | None:
    """The highest-weight rule for *pattern*, or ``None`` if it has none.

    This is the only relaxation PLANGEN needs to test per pattern
    (§3.2.1: normalisation makes each relaxation's top score equal its
    weight, so the top-weighted rule dominates).
    """
    candidates = rules.for_pattern(pattern)
    if not candidates:
        return None
    return max(candidates, key=lambda r: (r.weight, r.range.key()))
