"""Query model: triple-pattern queries, answers, scoring, and a
mini-SPARQL parser.

Implements Definitions 3–6 and 8 of the paper:

* :class:`~repro.query.query.TriplePatternQuery` — a set (kept ordered for
  determinism) of triple patterns over shared variables.
* :class:`~repro.query.answer.Answer` — a variable binding with a score.
* :func:`~repro.query.sparql.parse_sparql` — parses the SPARQL fragment the
  paper uses (``SELECT ?v ... WHERE { tp. tp. ... }``).
* :mod:`~repro.query.rewrite` — relaxed-query construction (Definition 8).
"""

from repro.query.answer import Answer, PartialAnswer
from repro.query.query import TriplePatternQuery
from repro.query.sparql import parse_sparql, format_sparql

__all__ = [
    "Answer",
    "PartialAnswer",
    "TriplePatternQuery",
    "format_sparql",
    "parse_sparql",
]
