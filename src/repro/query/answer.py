"""Answers and partial answers (Definitions 4, 6, 8).

An :class:`Answer` is a mapping from variable names to KG terms plus a
score.  During evaluation, operators pass around :class:`PartialAnswer`
objects — answers covering only a subset of the query's patterns — and the
memory metric of the paper ("number of answer objects created") counts
every one of them, so construction goes through
:meth:`PartialAnswer.create` which notifies an accounting hook.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.errors import ExecutionError


@dataclass(frozen=True, slots=True)
class Answer:
    """A final, projected answer.

    ``bindings`` maps variable names (no ``?`` prefix) to terms; ``score``
    is the (possibly relaxation-discounted) aggregate score of Definition
    6/8.  Equality ignores the score: an answer's identity is its bindings,
    which is what lets "first occurrence in descending-score order" realise
    ``S(A) = max over relaxations``.
    """

    bindings: tuple[tuple[str, str], ...]
    score: float

    @classmethod
    def from_mapping(cls, bindings: Mapping[str, str], score: float) -> "Answer":
        return cls(tuple(sorted(bindings.items())), float(score))

    def as_dict(self) -> dict[str, str]:
        return dict(self.bindings)

    def project(self, variable_names: tuple[str, ...]) -> "Answer":
        """Keep only *variable_names* in the bindings."""
        kept = tuple(
            (name, value) for name, value in self.bindings if name in variable_names
        )
        return Answer(kept, self.score)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Answer):
            return NotImplemented
        return self.bindings == other.bindings

    def __hash__(self) -> int:
        return hash(self.bindings)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"?{k}={v}" for k, v in self.bindings)
        return f"Answer({inner}, score={self.score:.4f})"


class AnswerFactory:
    """Creates :class:`PartialAnswer` objects and counts every creation.

    The paper's memory metric is "the total number of answer objects
    created … including all the intermediate answer objects encountered by
    Incremental Merges and Rank Joins".  All operators share one factory
    per execution, so the counter is exactly that number.
    """

    __slots__ = ("objects_created",)

    def __init__(self) -> None:
        self.objects_created = 0

    def make(
        self,
        bindings: Mapping[str, str],
        score: float,
        patterns_covered: frozenset[int],
    ) -> "PartialAnswer":
        self.objects_created += 1
        return PartialAnswer(
            bindings=dict(bindings),
            score=float(score),
            patterns_covered=patterns_covered,
        )

    def join(self, left: "PartialAnswer", right: "PartialAnswer") -> "PartialAnswer | None":
        """Join two partial answers if their shared bindings agree.

        Returns ``None`` on conflict.  Scores add (Definition 6: an
        answer's score is the sum of its per-pattern triple scores, and
        relaxation weights were already folded in per-triple).
        """
        overlap = left.patterns_covered & right.patterns_covered
        if overlap:
            raise ExecutionError(
                f"joining partial answers covering overlapping patterns {sorted(overlap)}"
            )
        for name, value in right.bindings.items():
            existing = left.bindings.get(name)
            if existing is not None and existing != value:
                return None
        merged = dict(left.bindings)
        merged.update(right.bindings)
        self.objects_created += 1
        return PartialAnswer(
            bindings=merged,
            score=left.score + right.score,
            patterns_covered=left.patterns_covered | right.patterns_covered,
        )


@dataclass(slots=True)
class PartialAnswer:
    """A binding covering a subset of the query's patterns.

    ``patterns_covered`` holds the indexes (into the query's pattern
    tuple) this partial answer accounts for; the executor uses it to
    assert that a plan's joins are well-formed.

    Construct through :class:`AnswerFactory` so the memory metric stays
    accurate.
    """

    bindings: dict[str, str]
    score: float
    patterns_covered: frozenset[int]

    def key_on(self, variable_names: tuple[str, ...]) -> tuple[str, ...]:
        """The join key: this answer's values for *variable_names*."""
        try:
            return tuple(self.bindings[name] for name in variable_names)
        except KeyError as exc:
            raise ExecutionError(
                f"partial answer missing join variable {exc.args[0]!r}"
            ) from None

    def identity(self) -> tuple[tuple[str, str], ...]:
        """Binding identity used for duplicate elimination."""
        return tuple(sorted(self.bindings.items()))

    def to_answer(self, projection: tuple[str, ...] | None = None) -> Answer:
        if projection is None:
            return Answer(self.identity(), self.score)
        kept = tuple(
            (name, self.bindings[name])
            for name in sorted(projection)
            if name in self.bindings
        )
        return Answer(kept, self.score)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"?{k}={v}" for k, v in sorted(self.bindings.items()))
        return f"PartialAnswer({inner}, score={self.score:.4f})"
