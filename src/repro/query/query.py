"""Triple-pattern queries (Definition 3).

A :class:`TriplePatternQuery` is an ordered collection of distinct triple
patterns sharing variables.  Order matters only for determinism (plan
shapes, tie-breaking); set semantics govern equality.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

from repro.errors import QueryError
from repro.kg.pattern import TriplePattern, Variable


@dataclass(frozen=True)
class TriplePatternQuery:
    """An ordered, duplicate-free sequence of triple patterns.

    Parameters
    ----------
    patterns:
        The triple patterns.  Must be non-empty and duplicate-free.
    projection:
        Variables to report in answers.  Defaults to all variables.
    name:
        Optional label used by workloads and reports.
    """

    patterns: tuple[TriplePattern, ...]
    projection: tuple[Variable, ...] = ()
    name: str = ""

    def __init__(
        self,
        patterns: Sequence[TriplePattern],
        projection: Sequence[Variable] | None = None,
        name: str = "",
    ) -> None:
        patterns = tuple(patterns)
        if not patterns:
            raise QueryError("a query must contain at least one triple pattern")
        if len(set(patterns)) != len(patterns):
            raise QueryError("duplicate triple patterns in query")
        all_vars = _ordered_variables(patterns)
        if projection is None:
            projection_tuple = all_vars
        else:
            projection_tuple = tuple(projection)
            unknown = [v for v in projection_tuple if v not in all_vars]
            if unknown:
                raise QueryError(
                    f"projection variables not in query: "
                    f"{', '.join(str(v) for v in unknown)}"
                )
        object.__setattr__(self, "patterns", patterns)
        object.__setattr__(self, "projection", projection_tuple)
        object.__setattr__(self, "name", name)

    # ------------------------------------------------------------------
    @property
    def variables(self) -> tuple[Variable, ...]:
        """All distinct variables in first-occurrence order."""
        return _ordered_variables(self.patterns)

    @property
    def variable_names(self) -> tuple[str, ...]:
        return tuple(v.name for v in self.variables)

    def __len__(self) -> int:
        return len(self.patterns)

    def __iter__(self) -> Iterator[TriplePattern]:
        return iter(self.patterns)

    def __contains__(self, pattern: object) -> bool:
        return pattern in self.patterns

    def index_of(self, pattern: TriplePattern) -> int:
        try:
            return self.patterns.index(pattern)
        except ValueError:
            raise QueryError(f"pattern {pattern} not in query") from None

    # ------------------------------------------------------------------
    def is_connected(self) -> bool:
        """True iff the patterns form one connected join graph.

        Two patterns are adjacent when they share a variable.  Single
        pattern queries are trivially connected.  Fully-constant patterns
        are treated as connected to everything (they act as boolean
        filters).
        """
        if len(self.patterns) <= 1:
            return True
        remaining = set(range(len(self.patterns)))
        frontier = {remaining.pop()}
        while frontier:
            current = frontier.pop()
            for other in list(remaining):
                if (
                    not self.patterns[other].variables
                    or not self.patterns[current].variables
                    or self.patterns[current].shares_variable_with(self.patterns[other])
                ):
                    remaining.discard(other)
                    frontier.add(other)
        return not remaining

    def join_variables(self) -> dict[str, list[int]]:
        """Map each variable name to the indexes of patterns using it."""
        usage: dict[str, list[int]] = {}
        for i, pattern in enumerate(self.patterns):
            for v in pattern.variable_names:
                usage.setdefault(v, []).append(i)
        return usage

    # ------------------------------------------------------------------
    def replace(self, old: TriplePattern, new: TriplePattern) -> "TriplePatternQuery":
        """Return a copy with *old* swapped for *new* (Definition 8's
        ``(Q \\ q) ∪ q'``), preserving position and projection."""
        idx = self.index_of(old)
        if new in self.patterns and new != old:
            raise QueryError(f"pattern {new} already present in query")
        new_patterns = list(self.patterns)
        new_patterns[idx] = new
        projection = tuple(v for v in self.projection)
        surviving = _ordered_variables(tuple(new_patterns))
        projection = tuple(v for v in projection if v in surviving) or surviving
        return TriplePatternQuery(new_patterns, projection, self.name)

    def without(self, pattern: TriplePattern) -> "TriplePatternQuery":
        """Return a copy lacking *pattern*."""
        idx = self.index_of(pattern)
        rest = self.patterns[:idx] + self.patterns[idx + 1:]
        if not rest:
            raise QueryError("cannot remove the only pattern of a query")
        surviving = _ordered_variables(rest)
        projection = tuple(v for v in self.projection if v in surviving) or surviving
        return TriplePatternQuery(rest, projection, self.name)

    def subquery(self, patterns: Sequence[TriplePattern], name: str = "") -> "TriplePatternQuery":
        """Build a query from a subset of this query's patterns."""
        for pattern in patterns:
            if pattern not in self.patterns:
                raise QueryError(f"pattern {pattern} not in query")
        surviving = _ordered_variables(tuple(patterns))
        projection = tuple(v for v in self.projection if v in surviving) or surviving
        return TriplePatternQuery(tuple(patterns), projection, name or self.name)

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TriplePatternQuery):
            return NotImplemented
        return set(self.patterns) == set(other.patterns) and set(
            self.projection
        ) == set(other.projection)

    def __hash__(self) -> int:
        return hash((frozenset(self.patterns), frozenset(self.projection)))

    def __str__(self) -> str:
        body = " . ".join(str(p) for p in self.patterns)
        proj = " ".join(str(v) for v in self.projection)
        return f"SELECT {proj} WHERE {{ {body} }}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" name={self.name!r}" if self.name else ""
        return f"TriplePatternQuery({len(self.patterns)} patterns{label})"


def _ordered_variables(patterns: Sequence[TriplePattern]) -> tuple[Variable, ...]:
    seen: dict[Variable, None] = {}
    for pattern in patterns:
        for v in pattern.variables:
            seen.setdefault(v)
    return tuple(seen)
