"""Piecewise densities with exact convolution.

The paper models each triple pattern's score distribution as a two-bucket
histogram (a piecewise-*constant* density) and builds the query-level
distribution as the convolution of the per-pattern densities (§3.1.2).
The convolution of two piecewise-constant densities is piecewise *linear*
(a sum of trapezoids, one per bucket pair), which this module computes
analytically — no sampling, no grids.

Both density classes share the operations the estimator needs:

``mass()``        total probability mass (≈ 1 after normalisation)
``cdf(x)``        cumulative distribution
``inverse_cdf(p)`` quantile function (used by the order-statistics rule)
``mean()``        expectation
``partial_expectation(c)``  ``∫_c^∞ t·f(t) dt`` — the *score mass* above
                  ``c``, which drives the two-bucket refit
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import HistogramError

#: Widths below this are treated as point masses when convolving.
_EPS = 1e-12


@dataclass(frozen=True)
class Bucket:
    """A uniform-density piece: probability *mass* spread over [lo, hi)."""

    lo: float
    hi: float
    mass: float

    def __post_init__(self) -> None:
        if not (math.isfinite(self.lo) and math.isfinite(self.hi)):
            raise HistogramError("bucket bounds must be finite")
        if self.hi < self.lo:
            raise HistogramError(f"bucket hi < lo: [{self.lo}, {self.hi})")
        if self.mass < 0:
            raise HistogramError(f"bucket mass must be >= 0, got {self.mass}")

    @property
    def width(self) -> float:
        return self.hi - self.lo

    @property
    def density(self) -> float:
        if self.width <= _EPS:
            return math.inf if self.mass > 0 else 0.0
        return self.mass / self.width


class PiecewiseConstantDensity:
    """A density made of uniform buckets (a histogram's pdf).

    Buckets must be sorted, non-overlapping, with non-negative masses and
    at least one bucket of positive mass.  Masses need not sum to 1; use
    :meth:`normalized` to rescale.
    """

    def __init__(self, buckets: Sequence[Bucket]) -> None:
        buckets = [b for b in buckets if b.mass > 0 or b.width > 0]
        if not buckets:
            raise HistogramError("density needs at least one bucket")
        for left, right in zip(buckets, buckets[1:]):
            if right.lo < left.hi - _EPS:
                raise HistogramError(
                    f"buckets overlap: [{left.lo}, {left.hi}) and "
                    f"[{right.lo}, {right.hi})"
                )
        self.buckets = tuple(buckets)
        self._cum: list[float] = []
        running = 0.0
        for bucket in self.buckets:
            running += bucket.mass
            self._cum.append(running)

    # ------------------------------------------------------------------
    @property
    def support(self) -> tuple[float, float]:
        return (self.buckets[0].lo, self.buckets[-1].hi)

    def mass(self) -> float:
        return self._cum[-1]

    def normalized(self) -> "PiecewiseConstantDensity":
        total = self.mass()
        if total <= 0:
            raise HistogramError("cannot normalise a zero-mass density")
        if abs(total - 1.0) < 1e-12:
            return self
        return PiecewiseConstantDensity(
            [Bucket(b.lo, b.hi, b.mass / total) for b in self.buckets]
        )

    def scaled(self, factor: float) -> "PiecewiseConstantDensity":
        """Scale the *domain* by ``factor > 0`` (X → factor·X).

        Masses are preserved.  This is how a relaxation weight ``w`` is
        applied to a pattern's score distribution: relaxed scores are
        ``w · S(t|q')``, i.e. the density's support shrinks by ``w``.
        """
        if factor <= 0:
            raise HistogramError(f"scale factor must be > 0, got {factor}")
        return PiecewiseConstantDensity(
            [Bucket(b.lo * factor, b.hi * factor, b.mass) for b in self.buckets]
        )

    # ------------------------------------------------------------------
    def pdf(self, x: float) -> float:
        for bucket in self.buckets:
            if bucket.lo <= x < bucket.hi:
                return bucket.density
        if self.buckets and x == self.buckets[-1].hi:
            return self.buckets[-1].density
        return 0.0

    def cdf(self, x: float) -> float:
        total = 0.0
        for bucket in self.buckets:
            if bucket.width <= _EPS:
                # Point mass at bucket.lo.
                if x >= bucket.lo:
                    total += bucket.mass
                else:
                    break
            elif x >= bucket.hi:
                total += bucket.mass
            elif x > bucket.lo:
                total += bucket.mass * (x - bucket.lo) / bucket.width
                break
            else:
                break
        return total

    def inverse_cdf(self, p: float) -> float:
        """Smallest ``x`` with ``cdf(x) >= p`` (p clamped to [0, mass])."""
        total = self.mass()
        p = min(max(p, 0.0), total)
        idx = bisect.bisect_left(self._cum, p - 1e-15)
        if idx >= len(self.buckets):
            return self.buckets[-1].hi
        bucket = self.buckets[idx]
        prior = self._cum[idx] - bucket.mass
        within = p - prior
        if bucket.mass <= _EPS or bucket.width <= _EPS:
            return bucket.lo
        return bucket.lo + bucket.width * (within / bucket.mass)

    def mean(self) -> float:
        return sum(b.mass * (b.lo + b.hi) / 2.0 for b in self.buckets)

    def partial_expectation(self, c: float) -> float:
        """``∫_c^∞ t f(t) dt`` — expected score mass above ``c``."""
        total = 0.0
        for bucket in self.buckets:
            lo = max(bucket.lo, c)
            if lo >= bucket.hi:
                if bucket.width <= _EPS and bucket.lo >= c:
                    total += bucket.mass * bucket.lo
                continue
            if bucket.width <= _EPS:
                total += bucket.mass * bucket.lo
                continue
            total += bucket.density * (bucket.hi**2 - lo**2) / 2.0
        return total

    def to_linear(self) -> "PiecewiseLinearDensity":
        segments = []
        for bucket in self.buckets:
            if bucket.width <= _EPS:
                continue
            segments.append(
                Segment(bucket.lo, bucket.hi, bucket.density, bucket.density)
            )
        if not segments:
            # All point masses; widen minimally so downstream code works.
            lo = self.buckets[0].lo
            total = self.mass()
            segments = [Segment(lo, lo + _EPS, total / _EPS, total / _EPS)]
        return PiecewiseLinearDensity(segments)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(
            f"[{b.lo:.3g},{b.hi:.3g}):{b.mass:.3g}" for b in self.buckets
        )
        return f"PiecewiseConstantDensity({inner})"


@dataclass(frozen=True)
class Segment:
    """A linear density piece: ``f`` interpolates ``y_lo → y_hi`` on [lo, hi)."""

    lo: float
    hi: float
    y_lo: float
    y_hi: float

    def __post_init__(self) -> None:
        if self.hi <= self.lo:
            raise HistogramError(f"segment needs hi > lo, got [{self.lo}, {self.hi})")
        if self.y_lo < -1e-9 or self.y_hi < -1e-9:
            raise HistogramError("segment density must be non-negative")

    @property
    def width(self) -> float:
        return self.hi - self.lo

    @property
    def slope(self) -> float:
        return (self.y_hi - self.y_lo) / self.width

    @property
    def mass(self) -> float:
        return (self.y_lo + self.y_hi) / 2.0 * self.width

    def value_at(self, x: float) -> float:
        return self.y_lo + self.slope * (x - self.lo)

    def mass_up_to(self, x: float) -> float:
        """``∫_lo^x f`` for ``x`` within the segment."""
        dx = x - self.lo
        return self.y_lo * dx + self.slope * dx * dx / 2.0

    def score_mass_from(self, c: float) -> float:
        """``∫_max(c,lo)^hi t f(t) dt`` with ``f(t) = α + β t``."""
        lo = max(c, self.lo)
        if lo >= self.hi:
            return 0.0
        beta = self.slope
        alpha = self.y_lo - beta * self.lo
        upper = alpha * self.hi**2 / 2.0 + beta * self.hi**3 / 3.0
        lower = alpha * lo**2 / 2.0 + beta * lo**3 / 3.0
        return upper - lower


class PiecewiseLinearDensity:
    """A density made of linear pieces — the result of convolving two
    piecewise-constant densities."""

    def __init__(self, segments: Sequence[Segment]) -> None:
        if not segments:
            raise HistogramError("density needs at least one segment")
        ordered = sorted(segments, key=lambda s: s.lo)
        for left, right in zip(ordered, ordered[1:]):
            if right.lo < left.hi - 1e-9:
                raise HistogramError("segments overlap")
        self.segments = tuple(ordered)
        self._cum: list[float] = []
        running = 0.0
        for segment in self.segments:
            running += segment.mass
            self._cum.append(running)

    # ------------------------------------------------------------------
    @property
    def support(self) -> tuple[float, float]:
        return (self.segments[0].lo, self.segments[-1].hi)

    def mass(self) -> float:
        return self._cum[-1]

    def normalized(self) -> "PiecewiseLinearDensity":
        total = self.mass()
        if total <= 0:
            raise HistogramError("cannot normalise a zero-mass density")
        if abs(total - 1.0) < 1e-12:
            return self
        return PiecewiseLinearDensity(
            [
                Segment(s.lo, s.hi, s.y_lo / total, s.y_hi / total)
                for s in self.segments
            ]
        )

    def pdf(self, x: float) -> float:
        for segment in self.segments:
            if segment.lo <= x < segment.hi:
                return segment.value_at(x)
        if x == self.segments[-1].hi:
            return self.segments[-1].y_hi
        return 0.0

    def cdf(self, x: float) -> float:
        total = 0.0
        for segment in self.segments:
            if x >= segment.hi:
                total += segment.mass
            elif x > segment.lo:
                total += segment.mass_up_to(x)
                break
            else:
                break
        return total

    def inverse_cdf(self, p: float) -> float:
        total = self.mass()
        p = min(max(p, 0.0), total)
        idx = bisect.bisect_left(self._cum, p - 1e-15)
        if idx >= len(self.segments):
            return self.segments[-1].hi
        segment = self.segments[idx]
        prior = self._cum[idx] - segment.mass
        target = p - prior
        if segment.mass <= _EPS:
            return segment.lo
        # Solve y_lo*d + slope*d^2/2 = target for d = x - lo.
        slope = segment.slope
        if abs(slope) < 1e-15:
            d = target / segment.y_lo if segment.y_lo > 0 else 0.0
        else:
            a = slope / 2.0
            b = segment.y_lo
            disc = b * b + 4.0 * a * target
            if disc < 0:
                disc = 0.0
            d = (-b + math.sqrt(disc)) / (2.0 * a)
            if d < 0 or d > segment.width + 1e-9:
                d = (-b - math.sqrt(disc)) / (2.0 * a)
        return segment.lo + min(max(d, 0.0), segment.width)

    def mean(self) -> float:
        return self.partial_expectation(self.support[0])

    def partial_expectation(self, c: float) -> float:
        return sum(segment.score_mass_from(c) for segment in self.segments)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        lo, hi = self.support
        return (
            f"PiecewiseLinearDensity({len(self.segments)} segments on "
            f"[{lo:.3g}, {hi:.3g}], mass={self.mass():.4f})"
        )


# ----------------------------------------------------------------------
# Convolution
# ----------------------------------------------------------------------
def _trapezoid_breaks(b1: Bucket, b2: Bucket) -> tuple[float, float, float, float, float]:
    """Breakpoints (lo, p1, p2, hi) and peak height of the convolution of
    two unit-mass uniforms (scaled later by the bucket masses)."""
    lo = b1.lo + b2.lo
    hi = b1.hi + b2.hi
    w_min = min(b1.width, b2.width)
    w_max = max(b1.width, b2.width)
    p1 = lo + w_min
    p2 = hi - w_min
    peak = 1.0 / w_max if w_max > _EPS else 0.0
    return lo, p1, p2, hi, peak


def _trapezoid_value(z: float, b1: Bucket, b2: Bucket) -> float:
    """Density of (U1 + U2) at z for unit masses, times the bucket masses."""
    mass = b1.mass * b2.mass
    if mass <= 0:
        return 0.0
    w1, w2 = b1.width, b2.width
    if w1 <= _EPS and w2 <= _EPS:
        return 0.0  # point mass handled separately
    if w1 <= _EPS:
        return mass / w2 if b1.lo + b2.lo <= z <= b1.lo + b2.hi else 0.0
    if w2 <= _EPS:
        return mass / w1 if b1.lo + b2.lo <= z <= b1.hi + b2.lo else 0.0
    lo, p1, p2, hi, peak = _trapezoid_breaks(b1, b2)
    if z <= lo or z >= hi:
        return 0.0
    if z < p1:
        return mass * peak * (z - lo) / (p1 - lo)
    if z <= p2:
        return mass * peak
    return mass * peak * (hi - z) / (hi - p2)


def convolve(
    d1: PiecewiseConstantDensity, d2: PiecewiseConstantDensity
) -> PiecewiseLinearDensity:
    """Exact convolution of two piecewise-constant densities.

    Each pair of buckets contributes a trapezoid; their sum is piecewise
    linear with breakpoints at every trapezoid corner.  The result is
    normalised to total mass ``d1.mass() * d2.mass()``.
    """
    def _widened(bucket: Bucket) -> Bucket:
        # A point-mass-like bucket is widened to a sliver so every pair
        # contributes a proper (if extremely tall) trapezoid; the widening
        # shifts means by at most _EPS/2.
        if bucket.width <= _EPS and bucket.mass > 0:
            return Bucket(bucket.lo, bucket.lo + _EPS, bucket.mass)
        return bucket

    breaks: set[float] = set()
    pairs: list[tuple[Bucket, Bucket]] = []
    for b1 in map(_widened, d1.buckets):
        for b2 in map(_widened, d2.buckets):
            if b1.mass <= 0 or b2.mass <= 0:
                continue
            pairs.append((b1, b2))
            lo, p1, p2, hi, _ = _trapezoid_breaks(b1, b2)
            breaks.update((lo, p1, p2, hi))
    if not pairs:
        raise HistogramError("cannot convolve zero-mass densities")

    xs = sorted(breaks)
    merged: list[float] = []
    for x in xs:
        if not merged or x - merged[-1] > 1e-12:
            merged.append(x)
    if len(merged) < 2:
        merged.append(merged[0] + _EPS)

    segments: list[Segment] = []
    for lo, hi in zip(merged, merged[1:]):
        mid_lo = lo + (hi - lo) * 1e-9
        mid_hi = hi - (hi - lo) * 1e-9
        y_lo = sum(_trapezoid_value(mid_lo, b1, b2) for b1, b2 in pairs)
        y_hi = sum(_trapezoid_value(mid_hi, b1, b2) for b1, b2 in pairs)
        segments.append(Segment(lo, hi, max(y_lo, 0.0), max(y_hi, 0.0)))

    result = PiecewiseLinearDensity(segments)
    target_mass = d1.mass() * d2.mass()
    actual = result.mass()
    if actual <= 0:
        raise HistogramError("convolution produced a zero-mass density")
    if abs(actual - target_mass) > 1e-9:
        factor = target_mass / actual
        result = PiecewiseLinearDensity(
            [
                Segment(s.lo, s.hi, s.y_lo * factor, s.y_hi * factor)
                for s in result.segments
            ]
        )
    return result
