"""Join cardinalities and selectivities.

§3.1.2 combines per-pattern densities using the answer count of the
combined query, ``m12 = m · m' · φ12``, and footnote 3 states the paper
uses *exact* join selectivity values (precomputed offline, as a
traditional optimizer would precompute statistics).  We provide both:

* **exact** — cached hash-join counting over the match lists (offline
  precomputation; the planner only reads the cache at plan time), and
* **independence** — the classic textbook estimate
  ``φ ≈ 1 / max(V(A, left), V(A, right))`` per shared variable,
  available for ablation.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Literal, Sequence

from repro.errors import StatisticsError
from repro.kg.graph import KnowledgeGraph
from repro.kg.pattern import TriplePattern
from repro.query.query import TriplePatternQuery

SelectivityMode = Literal["exact", "independence"]


class JoinCardinalityEstimator:
    """Answer-count estimates for triple-pattern (sub)queries.

    ``mode='exact'`` counts by hash-joining full match lists (cached per
    pattern multiset); ``mode='independence'`` multiplies match counts by
    per-join-variable selectivities estimated from distinct-value counts.
    """

    def __init__(self, graph: KnowledgeGraph, mode: SelectivityMode = "exact") -> None:
        if mode not in ("exact", "independence"):
            raise StatisticsError(f"unknown selectivity mode {mode!r}")
        self._graph = graph
        self.mode = mode
        self._exact_cache: dict[frozenset[TriplePattern], int] = {}
        self._distinct_cache: dict[tuple, int] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def cardinality(self, query: TriplePatternQuery) -> int:
        """(Estimated) number of answers of *query*."""
        if self.mode == "exact":
            return self._exact_cardinality(query.patterns)
        return self._independence_cardinality(query.patterns)

    def prefix_cardinalities(self, query: TriplePatternQuery) -> list[int]:
        """Cardinalities of the prefixes ``{q1}, {q1,q2}, ...`` — the
        stepwise counts the estimator's repeated convolution needs."""
        return [
            self.cardinality(query.subquery(query.patterns[: i + 1]))
            for i in range(len(query))
        ]

    def selectivity(
        self, left: Sequence[TriplePattern], right: TriplePattern
    ) -> float:
        """``φ`` such that ``|left ⋈ right| = |left| · m_right · φ``."""
        left_q = TriplePatternQuery(tuple(left))
        joint_q = TriplePatternQuery(tuple(left) + (right,))
        n_left = self.cardinality(left_q)
        m_right = self._graph.match_list(right).triples
        denom = n_left * len(m_right)
        if denom == 0:
            return 0.0
        return self.cardinality(joint_q) / denom

    def precompute(self, queries: Sequence[TriplePatternQuery]) -> int:
        """Warm the exact cache for all prefixes of *queries* (the offline
        phase); returns the number of cache entries afterwards."""
        for query in queries:
            self.prefix_cardinalities(query)
        return len(self._exact_cache)

    @property
    def cache_size(self) -> int:
        return len(self._exact_cache)

    # ------------------------------------------------------------------
    # Exact counting (hash join over match lists)
    # ------------------------------------------------------------------
    def _exact_cardinality(self, patterns: tuple[TriplePattern, ...]) -> int:
        key = frozenset(patterns)
        cached = self._exact_cache.get(key)
        if cached is not None:
            return cached

        # Start from the smallest match list for speed, then join the rest
        # greedily preferring connected patterns.
        order = sorted(
            range(len(patterns)),
            key=lambda i: (len(self._graph.match_list(patterns[i]).triples), i),
        )
        ordered = [patterns[i] for i in order]
        chosen: list[TriplePattern] = [ordered.pop(0)]
        while ordered:
            pick = next(
                (
                    i
                    for i, candidate in enumerate(ordered)
                    if any(candidate.shares_variable_with(c) for c in chosen)
                ),
                0,
            )
            chosen.append(ordered.pop(pick))

        bindings_list: list[dict[str, str]] = []
        first = chosen[0]
        for triple in self._graph.match_list(first).triples:
            bound = first.bind(triple)
            if bound is not None:
                bindings_list.append(bound)

        for pattern in chosen[1:]:
            pattern_bindings: list[dict[str, str]] = []
            for triple in self._graph.match_list(pattern).triples:
                bound = pattern.bind(triple)
                if bound is not None:
                    pattern_bindings.append(bound)
            shared = sorted(
                set(pattern.variable_names)
                & {name for b in bindings_list for name in b}
            )
            if shared:
                index: dict[tuple[str, ...], list[dict[str, str]]] = defaultdict(list)
                for binding in pattern_bindings:
                    index[tuple(binding[v] for v in shared)].append(binding)
                merged: list[dict[str, str]] = []
                for binding in bindings_list:
                    key_values = tuple(binding.get(v, "") for v in shared)
                    for candidate in index.get(key_values, ()):
                        if all(
                            binding.get(name, value) == value
                            for name, value in candidate.items()
                        ):
                            row = dict(binding)
                            row.update(candidate)
                            merged.append(row)
                bindings_list = merged
            else:  # cartesian product
                merged = []
                for binding in bindings_list:
                    for candidate in pattern_bindings:
                        if all(
                            binding.get(name, value) == value
                            for name, value in candidate.items()
                        ):
                            row = dict(binding)
                            row.update(candidate)
                            merged.append(row)
                bindings_list = merged
            if not bindings_list:
                break

        # Distinct full-variable bindings (Definition 4: an answer is a
        # mapping, so duplicates collapse).
        distinct = {tuple(sorted(b.items())) for b in bindings_list}
        count = len(distinct)
        self._exact_cache[key] = count
        return count

    # ------------------------------------------------------------------
    # Independence-assumption estimation
    # ------------------------------------------------------------------
    def _distinct_values(self, pattern: TriplePattern, variable: str) -> int:
        cache_key = (pattern.key(), variable)
        cached = self._distinct_cache.get(cache_key)
        if cached is not None:
            return cached
        values: set[str] = set()
        for triple in self._graph.match_list(pattern).triples:
            bound = pattern.bind(triple)
            if bound is not None and variable in bound:
                values.add(bound[variable])
        self._distinct_cache[cache_key] = len(values)
        return len(values)

    def _independence_cardinality(self, patterns: tuple[TriplePattern, ...]) -> int:
        estimate = 1.0
        seen: list[TriplePattern] = []
        for pattern in patterns:
            m = len(self._graph.match_list(pattern).triples)
            estimate *= m
            for variable in pattern.variable_names:
                for previous in seen:
                    if variable in previous.variable_names:
                        v_left = self._distinct_values(previous, variable)
                        v_right = self._distinct_values(pattern, variable)
                        denominator = max(v_left, v_right)
                        if denominator > 0:
                            estimate /= denominator
                        else:
                            estimate = 0.0
                        break  # one factor per (pattern, variable)
            seen.append(pattern)
        return max(int(round(estimate)), 0)
