"""Order-statistics approximations (§3.1).

For i.i.d. samples ``X_1..X_m`` with cdf ``F``, the expected value of the
``i``-th order statistic (ascending) is approximately ``F⁻¹(i / (m+1))``
(David & Nagaraja).  The planner asks two questions:

* *expected score at rank k from the top* of a query with ``n`` answers —
  the ascending index is ``n - k + 1``, so ``E ≈ F⁻¹((n - k + 1)/(n + 1))``;
* *expected top score* — rank 1 from the top, ``E ≈ F⁻¹(n/(n + 1))``.

When the sample is smaller than the requested rank (``n < k``), there is
no k-th answer at all; we return 0.0, which makes PLANGEN treat the
original query as unable to fill the top-k (so relaxations are kept) —
exactly the regime the paper's Twitter dataset exercises.
"""

from __future__ import annotations

from typing import Protocol

from repro.errors import EstimationError


class Distribution(Protocol):
    """Anything with an ``inverse_cdf`` over a normalised [0,1] mass."""

    def inverse_cdf(self, p: float) -> float:  # pragma: no cover - protocol
        ...


def expected_order_statistic(distribution: Distribution, i: int, m: int) -> float:
    """``E[X_(i)] ≈ F⁻¹(i/(m+1))`` for the i-th *ascending* order statistic
    of a sample of size ``m``."""
    if m <= 0:
        return 0.0
    if not 1 <= i <= m:
        raise EstimationError(f"order statistic index {i} outside 1..{m}")
    return float(distribution.inverse_cdf(i / (m + 1)))


def expected_score_at_rank(distribution: Distribution, rank: int, n: int) -> float:
    """Expected score of the answer at *rank* (1 = best) among ``n`` answers.

    Returns 0.0 when ``n < rank`` (no such answer exists).
    """
    if rank < 1:
        raise EstimationError(f"rank must be >= 1, got {rank}")
    if n < rank:
        return 0.0
    return expected_order_statistic(distribution, n - rank + 1, n)


def expected_top_score(distribution: Distribution, n: int) -> float:
    """Expected maximum score among ``n`` answers (rank 1)."""
    return expected_score_at_rank(distribution, 1, n)


def expected_kth_score(distribution: Distribution, k: int, n: int) -> float:
    """Expected k-th best score among ``n`` answers — ``E_Q(k)`` in §3.2.1."""
    return expected_score_at_rank(distribution, k, n)
