"""Score-mass histograms (§3.1.1) and the post-convolution refit (§3.1.2).

The paper's key modelling decision: per triple pattern, store only four
numbers — ``m`` (match count), ``σ_r`` (the normalised score at the rank
``r`` within which 80% of the *score mass* lies), ``S_r`` (cumulative
score through rank ``r``) and ``S_m`` (total score) — and model the score
pdf as two uniform buckets whose probability masses equal the score-mass
fractions (0.8 above ``σ_r``, 0.2 below).

After convolving per-pattern densities into a query-level density, the
paper refits a two-bucket histogram so multi-pattern queries stay cheap;
:meth:`TwoBucketHistogram.refit` does that by finding the σ with 80% of
the *expected score mass* (``∫ t·f``) above it.

:class:`NBucketHistogram` generalises to any number of score-mass
quantile buckets — the "multi-bucket histograms" the paper suggests in
§4.5.2 as an accuracy/planning-time trade-off.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import HistogramError
from repro.stats.piecewise import (
    Bucket,
    PiecewiseConstantDensity,
    PiecewiseLinearDensity,
)

#: The 80/20 rule the paper adopts for the bucket boundary.
DEFAULT_MASS_FRACTION = 0.8

#: Minimum relative bucket width, to keep densities well-defined when all
#: scores are (nearly) equal.
_MIN_REL_WIDTH = 1e-9


@dataclass(frozen=True)
class PatternStats:
    """The four stored values of §3.1.1 (plus the boundary rank).

    All scores are *normalised* (Definition 5), so ``high == 1.0`` for any
    non-empty match list.
    """

    m: int              # number of matches
    sigma_r: float      # score at the boundary rank r
    s_r: float          # cumulative score through rank r
    s_m: float          # total score over all m matches
    r: int              # the boundary rank itself (1-based)

    def __post_init__(self) -> None:
        if self.m < 0:
            raise HistogramError("match count must be >= 0")
        if self.m > 0:
            if not (0.0 <= self.sigma_r <= 1.0):
                raise HistogramError(f"sigma_r must be in [0,1], got {self.sigma_r}")
            if self.s_r < 0 or self.s_m < self.s_r - 1e-9:
                raise HistogramError(
                    f"inconsistent cumulative scores: S_r={self.s_r}, S_m={self.s_m}"
                )


def stats_from_scores(
    normalized_scores: Sequence[float],
    mass_fraction: float = DEFAULT_MASS_FRACTION,
) -> PatternStats:
    """Compute :class:`PatternStats` from a descending normalised score list.

    ``r`` is the smallest rank whose cumulative score reaches
    ``mass_fraction`` of the total; ``σ_r`` is the score at that rank.
    """
    if not 0.0 < mass_fraction < 1.0:
        raise HistogramError(f"mass_fraction must be in (0,1), got {mass_fraction}")
    scores = list(normalized_scores)
    if any(s < -1e-12 or s > 1.0 + 1e-9 for s in scores):
        raise HistogramError("normalised scores must lie in [0, 1]")
    if any(a < b - 1e-9 for a, b in zip(scores, scores[1:])):
        raise HistogramError("scores must be sorted in descending order")
    m = len(scores)
    if m == 0:
        return PatternStats(m=0, sigma_r=0.0, s_r=0.0, s_m=0.0, r=0)
    total = float(sum(scores))
    if total <= 0.0:
        return PatternStats(m=m, sigma_r=0.0, s_r=0.0, s_m=0.0, r=m)
    threshold = mass_fraction * total
    running = 0.0
    boundary_rank = m
    for rank, score in enumerate(scores, start=1):
        running += score
        if running >= threshold - 1e-12:
            boundary_rank = rank
            break
    s_r = float(sum(scores[:boundary_rank]))
    return PatternStats(
        m=m,
        sigma_r=float(scores[boundary_rank - 1]),
        s_r=s_r,
        s_m=total,
        r=boundary_rank,
    )


@dataclass(frozen=True)
class TwoBucketHistogram:
    """The paper's two-bucket score-mass histogram.

    The pdf is uniform on ``[0, sigma)`` with probability mass
    ``1 - beta`` and uniform on ``[sigma, high]`` with mass ``beta``,
    where ``beta = S_r / S_m`` (≈ 0.8 by construction).  ``count`` is the
    number of answers the distribution describes (``m`` for patterns, the
    estimated join cardinality for queries).

    ``high`` is 1.0 for normalised pattern lists and grows to the number
    of patterns for query-level (convolved) distributions.
    """

    sigma: float
    high: float
    beta: float
    count: int

    def __post_init__(self) -> None:
        if self.count < 0:
            raise HistogramError("count must be >= 0")
        if self.high <= 0:
            raise HistogramError(f"high must be > 0, got {self.high}")
        if not (0.0 <= self.beta <= 1.0):
            raise HistogramError(f"beta must be in [0,1], got {self.beta}")
        if not (0.0 <= self.sigma <= self.high + 1e-9):
            raise HistogramError(
                f"sigma must be in [0, high], got sigma={self.sigma}, high={self.high}"
            )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_scores(
        cls,
        normalized_scores: Sequence[float],
        mass_fraction: float = DEFAULT_MASS_FRACTION,
    ) -> "TwoBucketHistogram":
        """Build from a descending list of normalised scores."""
        stats = stats_from_scores(normalized_scores, mass_fraction)
        return cls.from_stats(stats)

    @classmethod
    def from_stats(cls, stats: PatternStats) -> "TwoBucketHistogram":
        if stats.m == 0 or stats.s_m <= 0:
            # Degenerate: an empty (or all-zero) match list.  Keep a valid
            # object; the estimator treats count == 0 as "no answers".
            return cls(sigma=0.0, high=1.0, beta=0.0, count=stats.m)
        return cls(
            sigma=float(stats.sigma_r),
            high=1.0,
            beta=float(stats.s_r / stats.s_m),
            count=stats.m,
        )

    @classmethod
    def refit(
        cls,
        density: PiecewiseLinearDensity | PiecewiseConstantDensity,
        count: int,
        mass_fraction: float = DEFAULT_MASS_FRACTION,
    ) -> "TwoBucketHistogram":
        """Refit a two-bucket histogram to an arbitrary density (§3.1.2).

        Finds ``σ`` such that the *expected score mass* above it,
        ``∫_σ^hi t·f(t) dt``, is ``mass_fraction`` of the total, then
        assigns bucket probability masses ``(1 - mass_fraction,
        mass_fraction)`` — mirroring how the per-pattern histograms assign
        probability equal to score-mass share.
        """
        if not 0.0 < mass_fraction < 1.0:
            raise HistogramError(
                f"mass_fraction must be in (0,1), got {mass_fraction}"
            )
        normalized = density.normalized()
        lo, hi = normalized.support
        if hi <= 0:
            return cls(sigma=0.0, high=1.0, beta=0.0, count=count)
        total_score_mass = normalized.partial_expectation(max(lo, 0.0))
        if total_score_mass <= 0:
            return cls(sigma=0.0, high=hi, beta=0.0, count=count)
        target = mass_fraction * total_score_mass

        # partial_expectation(c) decreases monotonically in c: bisect.
        # 48 halvings give ~3e-15 relative precision — well below any
        # score granularity the estimator can observe.
        lo_c, hi_c = max(lo, 0.0), hi
        for _ in range(48):
            mid = (lo_c + hi_c) / 2.0
            if normalized.partial_expectation(mid) >= target:
                lo_c = mid
            else:
                hi_c = mid
        sigma = (lo_c + hi_c) / 2.0
        sigma = min(max(sigma, 0.0), hi * (1.0 - _MIN_REL_WIDTH))
        return cls(sigma=sigma, high=hi, beta=mass_fraction, count=count)

    # ------------------------------------------------------------------
    # Density view
    # ------------------------------------------------------------------
    def to_density(self) -> PiecewiseConstantDensity:
        """The pdf of §3.1.1 as a piecewise-constant density."""
        sigma = min(max(self.sigma, self.high * _MIN_REL_WIDTH),
                    self.high * (1.0 - _MIN_REL_WIDTH))
        low_mass = max(1.0 - self.beta, 0.0)
        high_mass = self.beta
        buckets = []
        if low_mass > 0:
            buckets.append(Bucket(0.0, sigma, low_mass))
        else:
            buckets.append(Bucket(0.0, sigma, 0.0))
        buckets.append(Bucket(sigma, self.high, high_mass))
        return PiecewiseConstantDensity(buckets)

    def scaled(self, weight: float) -> "TwoBucketHistogram":
        """Apply a relaxation weight: scores scale by ``w``, so the whole
        support contracts by ``w`` (masses and count unchanged)."""
        if not 0.0 < weight <= 1.0:
            raise HistogramError(f"weight must be in (0,1], got {weight}")
        return TwoBucketHistogram(
            sigma=self.sigma * weight,
            high=self.high * weight,
            beta=self.beta,
            count=self.count,
        )

    # ------------------------------------------------------------------
    # Distribution interface (delegates to the density)
    # ------------------------------------------------------------------
    def pdf(self, x: float) -> float:
        return self.to_density().pdf(x)

    def cdf(self, x: float) -> float:
        return self.to_density().cdf(x)

    def inverse_cdf(self, p: float) -> float:
        return self.to_density().inverse_cdf(p)

    def mean(self) -> float:
        return self.to_density().mean()

    @property
    def is_degenerate(self) -> bool:
        return self.count == 0 or self.beta <= 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TwoBucketHistogram(sigma={self.sigma:.4f}, high={self.high:.4f}, "
            f"beta={self.beta:.3f}, count={self.count})"
        )


@dataclass(frozen=True)
class NBucketHistogram:
    """Generalised score-mass histogram with ``n`` quantile buckets.

    Bucket boundaries sit at the ranks where the cumulative score mass
    crosses each fraction in ``fractions`` (ascending, in (0,1)); bucket
    probability masses equal the score-mass shares, exactly generalising
    the two-bucket construction (fractions = (0.8,)).
    """

    boundaries: tuple[float, ...]   # descending score boundaries, len n-1
    masses: tuple[float, ...]       # probability mass per bucket, low→high
    high: float
    count: int

    def __post_init__(self) -> None:
        if self.count < 0:
            raise HistogramError("count must be >= 0")
        if len(self.masses) != len(self.boundaries) + 1:
            raise HistogramError(
                "need exactly len(boundaries)+1 masses "
                f"({len(self.boundaries)} boundaries, {len(self.masses)} masses)"
            )
        if any(m < 0 for m in self.masses):
            raise HistogramError("bucket masses must be >= 0")
        edges = (0.0, *sorted(self.boundaries), self.high)
        for left, right in zip(edges, edges[1:]):
            if right < left - 1e-12:
                raise HistogramError("histogram boundaries out of order")

    @classmethod
    def from_scores(
        cls,
        normalized_scores: Sequence[float],
        n_buckets: int = 4,
    ) -> "NBucketHistogram":
        """Build with bucket boundaries at equal score-mass quantiles."""
        if n_buckets < 2:
            raise HistogramError(f"need >= 2 buckets, got {n_buckets}")
        scores = list(normalized_scores)
        m = len(scores)
        if m == 0 or sum(scores) <= 0:
            return cls(
                boundaries=tuple(0.0 for _ in range(n_buckets - 1)),
                masses=tuple(0.0 for _ in range(n_buckets)),
                high=1.0,
                count=m,
            )
        total = float(sum(scores))
        # Fractions of score mass *above* each boundary, from the top:
        # e.g. 4 buckets -> top bucket holds 1/4 of mass, etc.  We express
        # them as cumulative-from-top fractions (1/n, 2/n, ..., (n-1)/n).
        fractions = [i / n_buckets for i in range(1, n_buckets)]
        boundaries: list[float] = []
        running = 0.0
        idx = 0
        for fraction in fractions:
            threshold = fraction * total
            while idx < m and running < threshold - 1e-12:
                running += scores[idx]
                idx += 1
            boundary_rank = max(idx, 1)
            boundaries.append(float(scores[boundary_rank - 1]))
        # Masses: score-mass share per bucket from low scores to high.
        edges_desc = boundaries  # descending
        cum_at_boundary: list[float] = []
        running = 0.0
        idx = 0
        for boundary in edges_desc:
            while idx < m and scores[idx] >= boundary - 1e-12:
                running += scores[idx]
                idx += 1
            cum_at_boundary.append(running)
        shares_from_top: list[float] = []
        prev = 0.0
        for value in cum_at_boundary:
            shares_from_top.append((value - prev) / total)
            prev = value
        shares_from_top.append((total - prev) / total)
        masses_low_to_high = tuple(reversed(shares_from_top))
        return cls(
            boundaries=tuple(boundaries),
            masses=masses_low_to_high,
            high=1.0,
            count=m,
        )

    def to_density(self) -> PiecewiseConstantDensity:
        edges = [0.0, *sorted(self.boundaries), self.high]
        # Deduplicate equal edges while keeping masses aligned by merging.
        buckets: list[Bucket] = []
        masses = list(self.masses)
        cleaned_edges: list[float] = [edges[0]]
        cleaned_masses: list[float] = []
        pending = 0.0
        for i in range(len(masses)):
            lo, hi = edges[i], edges[i + 1]
            pending += masses[i]
            if hi - cleaned_edges[-1] > 1e-12:
                cleaned_edges.append(hi)
                cleaned_masses.append(pending)
                pending = 0.0
        if pending > 0 and cleaned_masses:
            cleaned_masses[-1] += pending
        if not cleaned_masses:
            return PiecewiseConstantDensity([Bucket(0.0, self.high, 1.0)])
        for i, mass in enumerate(cleaned_masses):
            buckets.append(Bucket(cleaned_edges[i], cleaned_edges[i + 1], mass))
        return PiecewiseConstantDensity(buckets)

    def scaled(self, weight: float) -> "NBucketHistogram":
        if not 0.0 < weight <= 1.0:
            raise HistogramError(f"weight must be in (0,1], got {weight}")
        return NBucketHistogram(
            boundaries=tuple(b * weight for b in self.boundaries),
            masses=self.masses,
            high=self.high * weight,
            count=self.count,
        )

    @property
    def is_degenerate(self) -> bool:
        return self.count == 0 or sum(self.masses) <= 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"NBucketHistogram({len(self.masses)} buckets, high={self.high:.3f}, "
            f"count={self.count})"
        )
