"""Statistics substrate for the expected-score estimator (§3.1).

* :mod:`~repro.stats.piecewise` — piecewise-constant/linear densities with
  exact convolution, cdf inversion and partial expectations.
* :mod:`~repro.stats.histogram` — the paper's two-bucket score-mass
  histograms (plus an n-bucket generalisation for the §4.5.2 ablation).
* :mod:`~repro.stats.order_statistics` — ``E[X_(i)] ≈ F⁻¹(i/(m+1))``.
* :mod:`~repro.stats.selectivity` — exact join cardinalities (the paper's
  footnote-3 choice) plus independence-assumption estimates.
* :mod:`~repro.stats.catalog` — per-pattern statistics catalog consumed by
  the planner.
"""

from repro.stats.catalog import StatisticsCatalog
from repro.stats.histogram import NBucketHistogram, TwoBucketHistogram
from repro.stats.piecewise import PiecewiseConstantDensity, PiecewiseLinearDensity
from repro.stats.selectivity import JoinCardinalityEstimator

__all__ = [
    "JoinCardinalityEstimator",
    "NBucketHistogram",
    "PiecewiseConstantDensity",
    "PiecewiseLinearDensity",
    "StatisticsCatalog",
    "TwoBucketHistogram",
]
