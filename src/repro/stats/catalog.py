"""The precomputed-statistics catalog the planner consumes (§3.1.1).

For every triple pattern (keyed structurally, so variable names are
irrelevant) the catalog stores the paper's four values and the fitted
histogram.  It also owns the join-cardinality estimator.  Building the
catalog is the "offline" phase; :class:`repro.core.planner.SpecQPPlanner`
only reads from it at plan time.
"""

from __future__ import annotations

from typing import Literal, Sequence

from repro.errors import StatisticsError
from repro.kg.graph import KnowledgeGraph
from repro.kg.pattern import TriplePattern
from repro.query.query import TriplePatternQuery
from repro.stats.histogram import (
    DEFAULT_MASS_FRACTION,
    NBucketHistogram,
    PatternStats,
    TwoBucketHistogram,
    stats_from_scores,
)
from repro.stats.selectivity import JoinCardinalityEstimator, SelectivityMode

HistogramKind = Literal["two-bucket", "n-bucket"]


class StatisticsCatalog:
    """Per-pattern score statistics plus join cardinalities.

    Parameters
    ----------
    graph:
        The knowledge graph to summarise.
    mass_fraction:
        The score-mass fraction defining the bucket boundary (0.8 in the
        paper's 80/20 rule).
    histogram_kind / n_buckets:
        ``"two-bucket"`` reproduces the paper; ``"n-bucket"`` enables the
        §4.5.2 multi-bucket ablation.
    selectivity_mode:
        ``"exact"`` (paper's footnote 3) or ``"independence"``.
    """

    def __init__(
        self,
        graph: KnowledgeGraph,
        mass_fraction: float = DEFAULT_MASS_FRACTION,
        histogram_kind: HistogramKind = "two-bucket",
        n_buckets: int = 4,
        selectivity_mode: SelectivityMode = "exact",
    ) -> None:
        if histogram_kind not in ("two-bucket", "n-bucket"):
            raise StatisticsError(f"unknown histogram kind {histogram_kind!r}")
        self._graph = graph
        self.mass_fraction = mass_fraction
        self.histogram_kind = histogram_kind
        self.n_buckets = n_buckets
        self.cardinalities = JoinCardinalityEstimator(graph, selectivity_mode)
        self._stats: dict[tuple[str | None, str | None, str | None], PatternStats] = {}
        self._histograms: dict[
            tuple[str | None, str | None, str | None],
            TwoBucketHistogram | NBucketHistogram,
        ] = {}

    # ------------------------------------------------------------------
    @property
    def graph(self) -> KnowledgeGraph:
        return self._graph

    def pattern_stats(self, pattern: TriplePattern) -> PatternStats:
        """The four stored values (m, σ_r, S_r, S_m) for *pattern*."""
        key = pattern.key()
        cached = self._stats.get(key)
        if cached is None:
            match_list = self._graph.match_list(pattern)
            cached = stats_from_scores(
                match_list.normalized_scores, self.mass_fraction
            )
            self._stats[key] = cached
        return cached

    def histogram(
        self, pattern: TriplePattern
    ) -> TwoBucketHistogram | NBucketHistogram:
        """The fitted score-distribution histogram for *pattern*."""
        key = pattern.key()
        cached = self._histograms.get(key)
        if cached is None:
            match_list = self._graph.match_list(pattern)
            if self.histogram_kind == "two-bucket":
                cached = TwoBucketHistogram.from_stats(self.pattern_stats(pattern))
            else:
                cached = NBucketHistogram.from_scores(
                    match_list.normalized_scores, self.n_buckets
                )
            self._histograms[key] = cached
        return cached

    def match_count(self, pattern: TriplePattern) -> int:
        """``m_i`` for *pattern*."""
        return self.pattern_stats(pattern).m

    def cached_match_count(self, pattern: TriplePattern) -> int | None:
        """``m_i`` if already computed, else ``None`` — never builds.

        :meth:`match_count` materialises (and sorts) the pattern's match
        list on a cache miss, which is exactly the work a *cost rule*
        wants to predict, not perform.  This read-only variant lets the
        cost-based executor chooser treat "no statistics yet" as its own
        signal (an unmeasured pattern is a cold one) at dict-lookup cost.
        """
        cached = self._stats.get(pattern.key())
        return cached.m if cached is not None else None

    def estimated_match_lengths(
        self, query: TriplePatternQuery
    ) -> tuple[int | None, ...]:
        """Per-pattern cached ``m_i`` of *query* (``None`` = not measured).

        The executor cost rule's main input: after the workload warm-up
        precompute these are all cached, so the whole tuple costs a few
        dict lookups.
        """
        return tuple(self.cached_match_count(p) for p in query.patterns)

    def cardinality(self, query: TriplePatternQuery) -> int:
        """(Estimated) answer count of *query*."""
        return self.cardinalities.cardinality(query)

    # ------------------------------------------------------------------
    def precompute(
        self,
        patterns: Sequence[TriplePattern] = (),
        queries: Sequence[TriplePatternQuery] = (),
    ) -> dict[str, int]:
        """Warm all caches for a workload (the offline phase).

        Returns a small summary dict for logging/tests.
        """
        for pattern in patterns:
            self.histogram(pattern)
        if queries:
            for query in queries:
                for pattern in query.patterns:
                    self.histogram(pattern)
            self.cardinalities.precompute(list(queries))
        return {
            "patterns": len(self._histograms),
            "cardinality_cache": self.cardinalities.cache_size,
        }

    def invalidate(self) -> None:
        """Drop all cached statistics (after graph mutation)."""
        self._stats.clear()
        self._histograms.clear()
        self.cardinalities = JoinCardinalityEstimator(
            self._graph, self.cardinalities.mode
        )

    def refresh(self) -> dict[str, int]:
        """Incrementally drop only the statistics a live delta invalidated.

        A graph with a delta overlay (:class:`repro.kg.delta.LiveGraph`)
        journals the triple keys it mutated; refreshing drains that
        journal and drops exactly the cached pattern entries a mutated
        key can match — every untouched pattern keeps its stats and
        histogram, which on a small delta is almost all of them.  The
        dropped entries rebuild lazily from the live match lists (which
        themselves reuse the cached immutable base lists), so a refresh
        never triggers a full recompute.  Join-cardinality caches mix
        patterns, so they are rebuilt whenever anything was touched.

        Graphs without a delta journal fall back to :meth:`invalidate`.
        Returns ``{"dropped": ..., "kept": ...}`` over the histogram
        cache for logging/tests.
        """
        drain = getattr(self._graph, "drain_touched", None)
        touched = drain() if drain is not None else None
        if touched is None:
            # No journal, or the journal overflowed: everything may have
            # changed, so the only safe move is a full invalidation.
            dropped = len(self._stats.keys() | self._histograms.keys())
            self.invalidate()
            return {"dropped": dropped, "kept": 0}
        dropped = 0
        if touched:
            for key in list(self._stats.keys() | self._histograms.keys()):
                if any(
                    all(bound is None or bound == term for bound, term in zip(key, spo))
                    for spo in touched
                ):
                    self._stats.pop(key, None)
                    self._histograms.pop(key, None)
                    dropped += 1
            self.cardinalities = JoinCardinalityEstimator(
                self._graph, self.cardinalities.mode
            )
        return {"dropped": dropped, "kept": len(self._histograms)}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StatisticsCatalog({self.histogram_kind}, "
            f"mass_fraction={self.mass_fraction}, "
            f"patterns={len(self._histograms)})"
        )
