"""Tiny IRI/namespace helpers.

The paper's datasets mix IRIs (``rdf:type``, YAGO entities) with plain
textual tokens (XKG's OpenIE triples, Twitter terms).  We keep terms as
plain strings throughout the engine; this module only provides convenience
constructors so examples and datasets can build well-formed names.
"""

from __future__ import annotations

from dataclasses import dataclass


#: The one predicate the paper's running example uses everywhere.
RDF_TYPE = "rdf:type"


@dataclass(frozen=True)
class Namespace:
    """A string prefix that mints qualified names.

    >>> yago = Namespace("yago:")
    >>> yago["Shakira"]
    'yago:Shakira'
    """

    prefix: str

    def __getitem__(self, local_name: str) -> str:
        return self.term(local_name)

    def term(self, local_name: str) -> str:
        """Return ``prefix + local_name``.

        Raises :class:`ValueError` for empty local names, which would
        otherwise silently alias the namespace itself.
        """
        if not local_name:
            raise ValueError("local name must be non-empty")
        return f"{self.prefix}{local_name}"

    def __contains__(self, term: str) -> bool:
        return term.startswith(self.prefix)

    def local(self, term: str) -> str:
        """Strip the prefix from *term* (``ValueError`` if not in namespace)."""
        if term not in self:
            raise ValueError(f"{term!r} is not in namespace {self.prefix!r}")
        return term[len(self.prefix):]


#: Namespaces used by the bundled synthetic datasets.
YAGO = Namespace("yago:")
XKG = Namespace("xkg:")
TWEET = Namespace("tweet:")
TAG = Namespace("#")
