"""Scored triples (Definition 1 of the paper).

A triple is ``⟨s p o⟩`` with a non-negative raw score ``S(t)``.  Raw scores
are counts in both of the paper's datasets (occurrence counts / inlink
counts for XKG, retweet counts for Twitter); the engine never interprets
them directly — all operator-level scores are *normalised per match list*
(Definition 5), which happens in :mod:`repro.kg.index`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import KnowledgeGraphError


@dataclass(frozen=True, slots=True)
class Triple:
    """An immutable ``(subject, predicate, object)`` triple with a score.

    Equality and hashing ignore the score: the KG treats a triple's
    identity as its three terms, and re-adding a triple updates its score
    rather than duplicating it.
    """

    subject: str
    predicate: str
    object: str
    score: float = 1.0

    def __post_init__(self) -> None:
        for field_name in ("subject", "predicate", "object"):
            value = getattr(self, field_name)
            if not isinstance(value, str) or not value:
                raise KnowledgeGraphError(
                    f"triple {field_name} must be a non-empty string, got {value!r}"
                )
        if not isinstance(self.score, (int, float)):
            raise KnowledgeGraphError(f"triple score must be numeric, got {self.score!r}")
        if self.score < 0:
            raise KnowledgeGraphError(f"triple score must be >= 0, got {self.score}")

    @property
    def spo(self) -> tuple[str, str, str]:
        """The identity of the triple: its three terms."""
        return (self.subject, self.predicate, self.object)

    def with_score(self, score: float) -> "Triple":
        """Return a copy of this triple carrying *score*."""
        return Triple(self.subject, self.predicate, self.object, score)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Triple):
            return NotImplemented
        return self.spo == other.spo

    def __hash__(self) -> int:
        return hash(self.spo)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Triple({self.subject!r}, {self.predicate!r}, {self.object!r}, score={self.score:g})"
