"""Triple patterns and variables (Definition 2 of the paper).

A triple pattern is ``⟨S P O⟩`` where each position is either a constant
term from the KG or a :class:`Variable`.  A pattern matches every triple
that agrees with it on the constant positions; matching binds the
variables to the triple's values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

from repro.errors import PatternError
from repro.kg.triple import Triple


@dataclass(frozen=True, slots=True)
class Variable:
    """A SPARQL-style variable, printed with a leading question mark."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise PatternError("variable name must be non-empty")
        if self.name.startswith("?"):
            raise PatternError(
                f"variable name should not include the '?' prefix: {self.name!r}"
            )

    def __str__(self) -> str:
        return f"?{self.name}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Variable({self.name!r})"


Term = str | Variable


def is_variable(term: object) -> bool:
    """True iff *term* is a :class:`Variable`."""
    return isinstance(term, Variable)


def var(name: str) -> Variable:
    """Shorthand constructor: ``var('s') == Variable('s')``."""
    return Variable(name)


@dataclass(frozen=True, slots=True)
class TriplePattern:
    """An ``⟨S P O⟩`` pattern over constants and variables.

    The pattern's :meth:`key` — the three positions with every variable
    replaced by ``None`` — identifies its *match list* in the KG index:
    two patterns with the same key match exactly the same triples, even if
    their variables are named differently.
    """

    subject: Term
    predicate: Term
    object: Term

    def __post_init__(self) -> None:
        for position, value in zip("SPO", self.terms):
            if isinstance(value, Variable):
                continue
            if not isinstance(value, str) or not value:
                raise PatternError(
                    f"pattern position {position} must be a Variable or a "
                    f"non-empty string, got {value!r}"
                )
        if not self.variables and len(set(self.terms)) != 3:
            # A fully-constant pattern is legal (an "ask" pattern) but a
            # degenerate all-equal one is almost certainly a typo.
            pass

    @property
    def terms(self) -> tuple[Term, Term, Term]:
        return (self.subject, self.predicate, self.object)

    @property
    def variables(self) -> tuple[Variable, ...]:
        """The distinct variables, in S-P-O position order."""
        seen: dict[Variable, None] = {}
        for term in self.terms:
            if isinstance(term, Variable):
                seen.setdefault(term)
        return tuple(seen)

    @property
    def variable_names(self) -> tuple[str, ...]:
        return tuple(v.name for v in self.variables)

    def key(self) -> tuple[str | None, str | None, str | None]:
        """Constants with variables wildcarded — the index lookup key."""
        return tuple(
            None if isinstance(term, Variable) else term for term in self.terms
        )  # type: ignore[return-value]

    def matches(self, triple: Triple) -> bool:
        """True iff *triple* agrees with this pattern's constant positions
        and repeated variables bind consistently."""
        return self.bind(triple) is not None

    def bind(self, triple: Triple) -> dict[str, str] | None:
        """Return the variable bindings for *triple*, or ``None`` on mismatch.

        Handles repeated variables (``?x p ?x``) by requiring consistency.
        """
        bindings: dict[str, str] = {}
        for term, value in zip(self.terms, triple.spo):
            if isinstance(term, Variable):
                bound = bindings.get(term.name)
                if bound is None:
                    bindings[term.name] = value
                elif bound != value:
                    return None
            elif term != value:
                return None
        return bindings

    def substitute(self, bindings: Mapping[str, str]) -> "TriplePattern":
        """Replace every variable that *bindings* covers with its value."""
        new_terms = []
        for term in self.terms:
            if isinstance(term, Variable) and term.name in bindings:
                new_terms.append(bindings[term.name])
            else:
                new_terms.append(term)
        return TriplePattern(*new_terms)

    def rename(self, mapping: Mapping[str, str]) -> "TriplePattern":
        """Rename variables according to *mapping* (old name -> new name)."""
        new_terms: list[Term] = []
        for term in self.terms:
            if isinstance(term, Variable) and term.name in mapping:
                new_terms.append(Variable(mapping[term.name]))
            else:
                new_terms.append(term)
        return TriplePattern(*new_terms)

    def shares_variable_with(self, other: "TriplePattern") -> bool:
        return bool(set(self.variable_names) & set(other.variable_names))

    def __iter__(self) -> Iterator[Term]:
        return iter(self.terms)

    def __str__(self) -> str:
        return " ".join(str(t) for t in self.terms)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TriplePattern({self.subject!r}, {self.predicate!r}, {self.object!r})"
