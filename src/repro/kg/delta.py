"""Delta-overlay live updates over the immutable storage backends.

The columnar and sharded backends trade mutability for scale: their
stores are frozen at construction, so before this module, absorbing a
single new triple meant ``thaw()`` plus a full rebuild of columns, match
lists and statistics.  :class:`LiveGraph` restores the write path with
the classic LSM split — an **immutable base** (any
:class:`~repro.kg.graph.KnowledgeGraph`, typically a
:class:`~repro.kg.columnar.ColumnarGraph` or
:class:`~repro.kg.sharding.ShardedGraph`) under a **mutable delta**:

* *adds/overwrites* live in a small object-backed graph of their own, so
  per-pattern sorted delta match lists come from the ordinary
  :class:`~repro.kg.index.PatternIndex` machinery;
* *removes* become **tombstones**, keys masked out of every base read;
* reads serve the exact Definition-5 view by filtering superseded rows
  out of the (cached, immutable) base match list and k-way merging the
  delta's sorted adds back in — the same
  :func:`~repro.kg.index.merge_match_lists` that reassembles shard
  slices, so overlay reads are bit-for-bit equal to a from-scratch
  rebuild of the final triple set;
* :meth:`LiveGraph.compact` folds the delta into a fresh immutable base
  (vectorised through :meth:`~repro.kg.columnar.ColumnarStore.with_updates`,
  snapshot-compatible) once it crosses ``compact_threshold`` — the
  LSM merge step.  Range-partitioned bases re-bin on compaction because
  the new base re-partitions from scratch.

Versioning spans base swaps: the overlay's :attr:`~LiveGraph.version`
counter is monotone across every mutation *and* every compaction, so the
version-aware caches (:class:`~repro.service.cache.MatchListCache`, the
plan cache, the statistics catalog) invalidate exactly as they do for a
mutated object graph — no new coherence protocol.

Sharded bases keep their lazy execution: writes are routed to the owning
shard's delta (stable subject hash, or the score-range bin whose floor
the new score clears), and :meth:`LiveGraph.shard_leaf_inputs` serves
per-shard live slices — filtered base list merged with that shard's
delta — so :func:`repro.operators.shard_merge.build_leaf_scan` keeps
threshold early termination over the overlay.

The base must not be mutated behind the overlay's back; ``LiveGraph``
treats it as frozen (columnar and sharded bases enforce that themselves).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.errors import KnowledgeGraphError
from repro.kg.graph import KnowledgeGraph
from repro.kg.index import MatchList, PatternIndex, PatternKey, merge_match_lists
from repro.kg.pattern import TriplePattern
from repro.kg.triple import Triple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kg.columnar import ColumnarGraph
    from repro.kg.sharding import ShardedGraph, ShardLeafInput

#: A fully-bound triple key.
Spo = tuple[str, str, str]

#: Journal bound: past this many distinct touched keys the journal
#: collapses to "everything touched" (statistics refresh then falls back
#: to a full invalidation) so a consumer that never drains — or a huge
#: mutation stream — cannot grow memory without bound.
MAX_TOUCHED_JOURNAL = 65536


@dataclass(frozen=True)
class GraphUpdate:
    """One mutation: ``+`` adds or overwrites a scored triple, ``-`` removes.

    The unit the live-update surfaces exchange — the mutation TSV parser
    (:func:`repro.kg.storage.iter_update_tsv`), :meth:`LiveGraph.apply_updates`
    and :meth:`repro.service.WorkloadRunner.apply_updates` all speak it.
    """

    op: str
    subject: str
    predicate: str
    object: str
    score: float = 1.0

    def __post_init__(self) -> None:
        if self.op not in ("+", "-"):
            raise KnowledgeGraphError(
                f"update op must be '+' or '-', got {self.op!r}"
            )
        if self.op == "+" and not math.isfinite(self.score):
            # A non-finite score poisons every normalised match list and
            # makes the compacted base fail snapshot validation; reject it
            # here so the programmatic path matches the TSV parser.
            raise KnowledgeGraphError(
                f"update score must be finite, got {self.score!r}"
            )

    @classmethod
    def add(
        cls, subject: str, predicate: str, object_: str, score: float = 1.0
    ) -> "GraphUpdate":
        """An add/overwrite update."""
        return cls("+", subject, predicate, object_, float(score))

    @classmethod
    def remove(cls, subject: str, predicate: str, object_: str) -> "GraphUpdate":
        """A removal update (the score field is ignored)."""
        return cls("-", subject, predicate, object_)

    @property
    def spo(self) -> Spo:
        return (self.subject, self.predicate, self.object)

    def triple(self) -> Triple:
        """The scored triple a ``+`` update carries."""
        if self.op != "+":
            raise KnowledgeGraphError("only '+' updates carry a triple")
        return Triple(self.subject, self.predicate, self.object, self.score)


class LivePatternIndex(PatternIndex):
    """Serves the overlay-merged view of a :class:`LiveGraph`.

    Candidates are the base's candidates with superseded rows masked out
    plus the delta's; match lists are the base list (immutable, so the
    base's own caches stay warm across live mutations) filtered and
    merged with the delta list.  The inherited machinery — the per-key
    match-list cache, external cache hooks, version-staleness checks —
    keys on the *overlay's* monotone version, so every mutation and
    every compaction invalidates exactly once.
    """

    def candidates(self, key: PatternKey) -> list[Triple]:
        """Triples agreeing with the bound positions of *key* (live view)."""
        self._invalidate_if_stale()
        graph: LiveGraph = self._graph  # type: ignore[assignment]
        superseded = graph._superseded()
        base = graph.base._index.candidates(key)
        merged = (
            [t for t in base if t.spo not in superseded] if superseded else list(base)
        )
        merged.extend(graph.delta._index.candidates(key))
        return merged

    def _build_match_list(self, pattern: TriplePattern, key: PatternKey) -> MatchList:
        graph: LiveGraph = self._graph  # type: ignore[assignment]
        delta = graph.delta
        delta_list = delta.match_list(pattern) if delta.size else None
        return graph._overlay(key, graph.base.match_list(pattern), delta_list)

    def stats(self) -> dict[str, int]:
        base = super().stats()
        base["live"] = 1
        return base


class _LiveShardSlice:
    """One shard's live view: base slice minus superseded rows, plus the
    delta adds routed to that shard.

    Implements exactly the surface a lazy
    :class:`~repro.operators.shard_merge.ShardScan` pulls on first build
    (``match_list``); the shard's own bounded cache still serves the
    base part, so repeated queries over a dirty pattern re-filter a warm
    list instead of re-sorting columns.
    """

    __slots__ = ("_live", "_shard_id")

    def __init__(self, live: "LiveGraph", shard_id: int) -> None:
        self._live = live
        self._shard_id = shard_id

    @property
    def name(self) -> str:
        return f"{self._live.name}#s{self._shard_id}+delta"

    def match_list(self, pattern: TriplePattern) -> MatchList:
        live = self._live
        shard = live.base.shards[self._shard_id]
        delta_graph = live._shard_adds[self._shard_id]
        delta_list = delta_graph.match_list(pattern) if delta_graph.size else None
        return live._overlay(pattern.key(), shard.match_list(pattern), delta_list)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"_LiveShardSlice({self.name})"


class LiveGraph(KnowledgeGraph):
    """A mutable delta overlay over an immutable base graph.

    Presents the full :class:`~repro.kg.graph.KnowledgeGraph` interface —
    mutation included — over any frozen backend, serving exact
    Definition-5 match lists for the *merged* view.  See the module docs
    for the design; the headline contract is **rebuild equivalence**:
    after any interleaving of adds, overwrites and removes, every match
    list (triples, order, max score, normalised scores) is bit-for-bit
    the list a graph freshly built from the final triple set serves.

    Parameters
    ----------
    base:
        The frozen graph to overlay.  Sharded bases keep lazy per-shard
        execution (see :meth:`shard_leaf_inputs`); object-backed bases
        work too but must not be mutated directly afterwards.
    compact_threshold:
        Auto-compact once ``delta_size`` (adds + tombstones) reaches this
        bound; ``None`` (default) compacts only on explicit
        :meth:`compact`.

    >>> from repro.kg import ColumnarGraph, KnowledgeGraph, LiveGraph
    >>> kg = KnowledgeGraph()
    >>> kg.add("shakira", "rdf:type", "singer", score=120.0)
    >>> live = LiveGraph(ColumnarGraph.from_graph(kg))
    >>> live.add("freddie", "rdf:type", "singer", score=115.0)
    >>> live.size
    2
    """

    def __init__(
        self,
        base: KnowledgeGraph,
        name: str | None = None,
        compact_threshold: int | None = None,
    ) -> None:
        if isinstance(base, LiveGraph):
            raise KnowledgeGraphError(
                "base is already a LiveGraph; compact() it instead of stacking overlays"
            )
        if compact_threshold is not None and compact_threshold < 1:
            raise KnowledgeGraphError(
                f"compact_threshold must be >= 1, got {compact_threshold}"
            )
        self.name = name or base.name
        self.compact_threshold = compact_threshold
        self._base = base
        self._tombstones: set[Spo] = set()
        self._overwrites: set[Spo] = set()
        #: None = overflowed ("everything touched"); see drain_touched.
        self._touched_log: set[Spo] | None = set()
        self._superseded_cache: frozenset[Spo] | None = None
        #: Packed int64 twin of the superseded set (1-tuple when built;
        #: holds None inside when the base dictionary cannot pack).
        self._superseded_packed: tuple | None = None
        self._version = base.version
        self._compactions = 0
        self._index = LivePatternIndex(self)
        self._reset_delta()

    def _reset_delta(self) -> None:
        """Fresh (empty) delta structures over the current base."""
        self._adds = KnowledgeGraph(name=f"{self.name}#delta")
        self._tombstones.clear()
        self._overwrites.clear()
        self._superseded_cache = None
        self._superseded_packed = None
        self._shard_adds: list[KnowledgeGraph] | None = None
        self._delta_shard: dict[Spo, int] = {}
        self._score_floors: tuple[float | None, ...] | None = None
        if getattr(self._base, "shards", None) is not None:
            self._shard_adds = [
                KnowledgeGraph(name=f"{self.name}#delta-s{i}")
                for i in range(self._base.n_shards)  # type: ignore[attr-defined]
            ]
            # Presence of this attribute is what routes leaf construction
            # through the lazy per-shard merge (build_leaf_scan probes it),
            # so only sharded bases expose it.
            self.shard_leaf_inputs = self._live_shard_leaf_inputs

    # ------------------------------------------------------------------
    # Mutation (the write path)
    # ------------------------------------------------------------------
    def add_triple(self, triple: Triple) -> None:
        if not isinstance(triple, Triple):
            raise KnowledgeGraphError(f"expected Triple, got {type(triple).__name__}")
        self._apply_add(triple)
        self._version += 1
        self._maybe_compact()

    def add_triples(self, triples: Iterable[Triple]) -> int:
        count = 0
        try:
            for triple in triples:
                if not isinstance(triple, Triple):
                    raise KnowledgeGraphError(
                        f"expected Triple, got {type(triple).__name__}"
                    )
                self._apply_add(triple)
                count += 1
                self._maybe_compact()
        finally:
            # A mid-stream failure must still bump the version: some
            # triples landed, and version-tagged caches would otherwise
            # serve the pre-mutation view forever.
            if count:
                self._version += 1
        if count:
            self._maybe_compact()
        return count

    def remove(self, subject: str, predicate: str, obj: str) -> bool:
        removed = self._apply_remove((subject, predicate, obj))
        if removed:
            self._version += 1
            self._maybe_compact()
        return removed

    def apply_updates(self, updates: Iterable[GraphUpdate]) -> dict[str, int]:
        """Apply a batch of updates in order; one version bump per batch.

        Returns counters: ``adds`` (including overwrites), ``removes``
        that hit a live triple, and ``absent_removes`` that were no-ops.
        """
        adds = removes = absent = 0
        try:
            for update in updates:
                if not isinstance(update, GraphUpdate):
                    raise KnowledgeGraphError(
                        f"expected GraphUpdate, got {type(update).__name__}"
                    )
                if update.op == "+":
                    self._apply_add(update.triple())
                    adds += 1
                elif self._apply_remove(update.spo):
                    removes += 1
                else:
                    absent += 1
                # Checked per update, not per batch: the threshold bounds
                # peak delta memory even for one huge streamed batch.
                self._maybe_compact()
        finally:
            # A mid-stream failure (e.g. a malformed mutation-TSV line
            # raising from the iterator) must still bump the version —
            # earlier updates landed, and stale version tags would pin
            # every cache to the pre-mutation view.
            if adds or removes:
                self._version += 1
        return {"adds": adds, "removes": removes, "absent_removes": absent}

    def _apply_add(self, triple: Triple) -> None:
        spo = triple.spo
        self._tombstones.discard(spo)
        if self._shard_adds is not None:
            # Re-route: an overwrite may change the score-range bin.
            previous = self._delta_shard.pop(spo, None)
            if previous is not None:
                self._shard_adds[previous].remove(*spo)
            shard = self._route(triple)
            self._shard_adds[shard].add_triple(triple)
            self._delta_shard[spo] = shard
        self._adds.add_triple(triple)
        if spo in self._base:
            self._overwrites.add(spo)
        self._journal(spo)
        self._superseded_cache = None
        self._superseded_packed = None

    def _journal(self, spo: Spo) -> None:
        if self._touched_log is not None:
            self._touched_log.add(spo)
            if len(self._touched_log) > MAX_TOUCHED_JOURNAL:
                self._touched_log = None  # overflow: everything touched

    def _apply_remove(self, spo: Spo) -> bool:
        removed = False
        if spo in self._adds:
            self._adds.remove(*spo)
            self._overwrites.discard(spo)
            if self._shard_adds is not None:
                self._shard_adds[self._delta_shard.pop(spo)].remove(*spo)
            removed = True
        if spo in self._base and spo not in self._tombstones:
            self._tombstones.add(spo)
            removed = True
        if removed:
            self._journal(spo)
            self._superseded_cache = None
            self._superseded_packed = None
        return removed

    def _route(self, triple: Triple) -> int:
        """The shard that owns *triple* under the base's strategy."""
        base: "ShardedGraph" = self._base  # type: ignore[assignment]
        if base.strategy == "hash-subject":
            from repro.kg.sharding import shard_of_subject

            return shard_of_subject(triple.subject, base.n_shards)
        # score-range: the hottest shard whose base score floor the new
        # score clears; colder than every floor lands in the last shard.
        if self._score_floors is None:
            self._score_floors = tuple(
                float(shard.store.scores.min()) if shard.size else None
                for shard in base.shards
            )
        for shard_id, floor in enumerate(self._score_floors):
            if floor is not None and triple.score >= floor:
                return shard_id
        return base.n_shards - 1

    def _maybe_compact(self) -> None:
        if (
            self.compact_threshold is not None
            and self.delta_size >= self.compact_threshold
        ):
            self.compact()

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def compact(self) -> int:
        """Fold the delta into a fresh immutable base; returns rows folded.

        Columnar and sharded bases fold vectorised
        (:meth:`~repro.kg.columnar.ColumnarStore.with_updates`) and stay
        snapshot-compatible; a sharded base is re-partitioned from
        scratch, which re-bins ``score-range`` shards around the new
        score distribution.  The version counter keeps climbing across
        the swap, so every version-tagged cache entry goes stale at once.
        """
        folded = self.delta_size
        if folded == 0:
            return 0
        base = self._base
        store = getattr(base, "store", None)
        if store is not None:
            adds = {t.spo: t.score for t in self._adds.triples()}
            new_store = store.with_updates(adds, self._superseded())
            if getattr(base, "shards", None) is not None:
                from repro.kg.sharding import ShardedGraph

                self._base = ShardedGraph(
                    new_store,
                    base.n_shards,  # type: ignore[attr-defined]
                    strategy=base.strategy,  # type: ignore[attr-defined]
                    name=base.name,
                    shard_cache_capacity=base.shard_caches[0].capacity,  # type: ignore[attr-defined]
                )
            else:
                from repro.kg.columnar import ColumnarGraph

                self._base = ColumnarGraph(new_store, name=base.name)
        else:
            self._base = KnowledgeGraph(self.triples(), name=base.name)
        self._reset_delta()
        self._version += 1
        self._compactions += 1
        return folded

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def base(self) -> KnowledgeGraph:
        """The current immutable base (swapped by :meth:`compact`)."""
        return self._base

    @property
    def delta(self) -> KnowledgeGraph:
        """The adds overlay as a graph (read it, never mutate it directly)."""
        return self._adds

    @property
    def delta_size(self) -> int:
        """Pending mutations: delta adds plus tombstones."""
        return self._adds.size + len(self._tombstones)

    @property
    def compactions(self) -> int:
        """How many times the delta has been folded into the base."""
        return self._compactions

    @property
    def size(self) -> int:
        return (
            self._base.size
            + self._adds.size
            - len(self._overwrites)
            - len(self._tombstones)
        )

    def _superseded(self) -> frozenset[Spo]:
        """Base keys masked by the delta: overwrites plus tombstones."""
        cached = self._superseded_cache
        if cached is None:
            cached = frozenset(self._overwrites) | frozenset(self._tombstones)
            self._superseded_cache = cached
        return cached

    def drain_touched(self) -> frozenset[Spo] | None:
        """Triple keys mutated since the last drain; draining clears the log.

        The incremental-invalidation feed for
        :meth:`repro.stats.catalog.StatisticsCatalog.refresh` — it
        survives compaction (which clears the delta but not the log), so
        a refresh after an auto-compact still sees what changed.  Returns
        ``None`` when the journal overflowed its bound
        (:data:`MAX_TOUCHED_JOURNAL`) since the last drain — "everything
        touched", so consumers must invalidate fully.
        """
        touched = (
            frozenset(self._touched_log) if self._touched_log is not None else None
        )
        self._touched_log = set()
        return touched

    def __contains__(self, item: object) -> bool:
        if isinstance(item, Triple):
            item = item.spo
        if not (isinstance(item, tuple) and len(item) == 3):
            return False
        if item in self._adds:
            return True
        return item not in self._tombstones and item in self._base

    def triples(self) -> Iterator[Triple]:
        """Iterate the live view: surviving base rows, then delta adds."""
        superseded = self._superseded()
        for triple in self._base.triples():
            if triple.spo not in superseded:
                yield triple
        yield from self._adds.triples()

    def score_of(self, subject: str, predicate: str, obj: str) -> float:
        spo = (subject, predicate, obj)
        if spo in self._adds:
            return self._adds.score_of(subject, predicate, obj)
        if spo in self._tombstones:
            raise KnowledgeGraphError(
                f"triple ({subject!r}, {predicate!r}, {obj!r}) not in graph"
            )
        return self._base.score_of(subject, predicate, obj)

    def entities(self) -> set[str]:
        if not self._tombstones:
            return self._base.entities() | self._adds.entities()
        result: set[str] = set()
        for triple in self.triples():
            result.add(triple.subject)
            result.add(triple.object)
        return result

    def predicates(self) -> set[str]:
        if not self._tombstones:
            return self._base.predicates() | self._adds.predicates()
        return {triple.predicate for triple in self.triples()}

    def thaw(self) -> KnowledgeGraph:
        """A mutable object-backed copy of the live view."""
        return KnowledgeGraph(self.triples(), name=self.name)

    def shard_sizes(self) -> tuple[int, ...]:
        """Base triples per shard (sharded bases only; excludes the delta)."""
        return self._sharded_base().shard_sizes()

    def shard_cache_stats(self):
        """Aggregated per-shard cache counters of the sharded base."""
        return self._sharded_base().shard_cache_stats()

    def _sharded_base(self) -> "ShardedGraph":
        if getattr(self._base, "shards", None) is None:
            raise KnowledgeGraphError(
                f"base graph {type(self._base).__name__} is not sharded"
            )
        return self._base  # type: ignore[return-value]

    def invalidate_caches(self) -> None:
        """Cold-start: drop overlay, base and delta caches alike."""
        super().invalidate_caches()
        self._base.invalidate_caches()
        self._adds.invalidate_caches()
        for shard_delta in self._shard_adds or ():
            shard_delta.invalidate_caches()

    # ------------------------------------------------------------------
    # Overlay reads
    # ------------------------------------------------------------------
    def _overlay(
        self, key: PatternKey, base_list: MatchList, delta_list: MatchList | None
    ) -> MatchList:
        """*base_list* minus superseded rows, merged with *delta_list*."""
        superseded = self._superseded()
        filtered = base_list
        if superseded and base_list.triples:
            kept = [t for t in base_list.triples if t.spo not in superseded]
            if len(kept) != len(base_list.triples):
                filtered = MatchList.from_triples(key, kept)
        parts = [part for part in (filtered, delta_list) if part]
        if not parts:
            return MatchList(key, (), 0.0, ())
        return merge_match_lists(key, parts)

    def _live_shard_leaf_inputs(
        self, pattern: TriplePattern
    ) -> tuple[float, list["ShardLeafInput"]]:
        """Per-shard live leaf inputs plus the exact global normaliser.

        With an empty delta this is the base's lazy peek, untouched.
        With a dirty delta each shard contributes its live slice: a warm
        base list is filtered and merged eagerly (no sort, no decode), a
        cold one is bounded by a vectorised tombstone-aware peek plus the
        shard's delta maximum — still exact, so
        :class:`~repro.operators.shard_merge.ShardMerge` keeps threshold
        early termination over the overlay.
        """
        from repro.kg.sharding import ShardLeafInput

        base: "ShardedGraph" = self._base  # type: ignore[assignment]
        if self.delta_size == 0:
            return base.shard_leaf_inputs(pattern)
        key = pattern.key()
        superseded = self._superseded()
        global_max = 0.0
        inputs: list[ShardLeafInput] = []
        assert self._shard_adds is not None
        for shard_id, (shard, cache) in enumerate(zip(base.shards, base.shard_caches)):
            shard_delta = self._shard_adds[shard_id]
            delta_list = shard_delta.match_list(pattern) if shard_delta.size else None
            cached = cache.get(key, shard.version)
            if cached is not None:
                live_list = self._overlay(key, cached, delta_list)
                n_matches, local_max = len(live_list), live_list.max_score
                match_list = live_list if n_matches else None
            else:
                n_base, base_max = self._filtered_peek(shard, pattern, superseded)
                n_delta = len(delta_list) if delta_list is not None else 0
                delta_max = delta_list.max_score if delta_list is not None else 0.0
                n_matches = n_base + n_delta
                local_max = max(base_max, delta_max)
                match_list = None
            inputs.append(
                ShardLeafInput(
                    _LiveShardSlice(self, shard_id), n_matches, local_max, match_list
                )
            )
            if local_max > global_max:
                global_max = local_max
        return global_max, inputs

    def _filtered_peek(
        self, shard: "ColumnarGraph", pattern: TriplePattern, superseded: frozenset[Spo]
    ) -> tuple[int, float]:
        """``(n_matches, max raw score)`` of a shard's *surviving* base rows.

        The tombstone-aware twin of
        :meth:`~repro.kg.columnar.ColumnarPatternIndex.peek`: one mask,
        one key-exclusion, one max — no decode, no sort.
        """
        from repro.kg.columnar import ColumnarPatternIndex

        store = shard.store
        rows = store.rows_matching(pattern.key())
        rows = ColumnarPatternIndex._filter_repeated_variables(pattern, rows, store)
        if superseded and len(rows):
            # Shard stores share one term dictionary, so the superseded
            # keys pack once per delta state and mask every shard.
            if self._superseded_packed is None:
                self._superseded_packed = (store.pack_keys(superseded),)
            rows = store.exclude_keys(
                rows, superseded, packed_keys=self._superseded_packed[0]
            )
        if len(rows) == 0:
            return 0, 0.0
        return len(rows), float(store.scores[rows].max())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LiveGraph(name={self.name!r}, size={self.size}, "
            f"delta={self.delta_size}, base={type(self._base).__name__}, "
            f"version={self.version})"
        )
