"""Sharded columnar storage: partition a graph, keep answers identical.

Scaling past one match-list index means splitting the triple store into
**shards** that can be scanned, sorted and cached independently — the
plan-level decomposition classic rank-join systems use to parallelise
top-k.  The non-negotiable constraint is *semantic transparency*: a
sharded graph must be indistinguishable from the unsharded one to every
consumer — the statistics catalog, PLANGEN, the operators and the service
caches — down to byte-identical answers and scores.

Two partitioning strategies are provided:

``hash-subject``
    Rows are assigned by a stable hash (CRC-32) of the subject term, so
    the same graph shards the same way in every process.  Star-shaped
    workloads co-locate each candidate answer's triples in one shard.

``score-range``
    Rows are split into contiguous chunks of the global score-descending
    order: shard 0 holds the hottest triples.  Because every match list
    restricted to shard *i* dominates the one restricted to shard *i+1*,
    top-k execution usually terminates before the cold shards' match
    lists are ever built — see
    :func:`repro.operators.shard_merge.build_leaf_scan`.

Transparency is achieved at the match-list level.  Every shard store is a
column slice over the *shared* term dictionary, so per-shard match lists
sort with exactly the Definition-5 key; :func:`merge_match_lists` k-way
merges them back into the global list, bit-for-bit equal (same triples,
same order, same normaliser) to the one an unsharded backend builds.
:class:`ShardedGraph` exposes the full :class:`~repro.kg.graph.KnowledgeGraph`
interface on top of that, with one PR-1 style
:class:`~repro.service.cache.MatchListCache` **per shard** plus the
ordinary external-cache hook for the merged lists.
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING, Literal, NamedTuple

import numpy as np

from repro.errors import KnowledgeGraphError
from repro.kg.columnar import ColumnarGraph, ColumnarPatternIndex, ColumnarStore
from repro.kg.graph import KnowledgeGraph
from repro.kg.index import MatchList, PatternKey, merge_match_lists
from repro.kg.pattern import TriplePattern

__all__ = [
    "DEFAULT_SHARD_CACHE_CAPACITY",
    "SHARD_STRATEGIES",
    "ShardLeafInput",
    "ShardStrategy",
    "ShardedGraph",
    "ShardedPatternIndex",
    "merge_match_lists",
    "partition_rows",
    "partition_store",
    "shard_of_subject",
    "subject_shard_ids",
]

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.cache import CacheStats, MatchListCache

#: Supported partitioning strategies.
ShardStrategy = Literal["hash-subject", "score-range"]

SHARD_STRATEGIES: tuple[str, ...] = ("hash-subject", "score-range")

#: Default per-shard match-list cache capacity.
DEFAULT_SHARD_CACHE_CAPACITY = 512


def shard_of_subject(subject: str, n_shards: int) -> int:
    """The shard owning *subject* under the stable CRC-32 subject hash.

    The single-term twin of :func:`subject_shard_ids`, used to route live
    writes (:class:`repro.kg.delta.LiveGraph`) to the shard that would
    hold the triple after a rebuild.
    """
    return zlib.crc32(subject.encode("utf-8")) % n_shards


def subject_shard_ids(store: ColumnarStore, n_shards: int) -> np.ndarray:
    """Shard id per *row* under the stable subject hash.

    CRC-32 of the UTF-8 subject term keeps the assignment independent of
    term-id insertion order and of Python's randomised string hashing, so
    equal graphs shard equally across processes and sessions.  Only the
    terms that actually occur as subjects are hashed — on object-heavy
    graphs that is a small fraction of the dictionary.
    """
    if store.n_triples == 0:
        return np.empty(0, dtype=np.int64)
    terms = store.term_list()
    per_term = np.zeros(store.n_terms, dtype=np.int64)
    for term_id in np.unique(store.subjects).tolist():
        per_term[term_id] = shard_of_subject(terms[term_id], n_shards)
    return per_term[store.subjects]


def partition_rows(
    store: ColumnarStore, n_shards: int, strategy: ShardStrategy
) -> list[np.ndarray]:
    """Row indexes per shard — a disjoint cover of ``range(n_triples)``."""
    if n_shards < 1:
        raise KnowledgeGraphError(f"n_shards must be >= 1, got {n_shards}")
    if strategy not in SHARD_STRATEGIES:
        raise KnowledgeGraphError(
            f"unknown shard strategy {strategy!r}; choose from {SHARD_STRATEGIES}"
        )
    if n_shards == 1:
        return [np.arange(store.n_triples, dtype=np.int64)]
    if strategy == "hash-subject":
        shard_of = subject_shard_ids(store, n_shards)
        return [
            np.nonzero(shard_of == shard)[0] for shard in range(n_shards)
        ]
    # score-range: contiguous chunks of the score-descending order, ties
    # broken by row position (stable sort) for determinism.
    order = np.argsort(-store.scores, kind="stable")
    return [np.sort(chunk) for chunk in np.array_split(order, n_shards)]


def partition_store(
    store: ColumnarStore, n_shards: int, strategy: ShardStrategy
) -> tuple[ColumnarStore, ...]:
    """Slice *store* into shard stores over the **shared** term dictionary.

    Sharing the dictionary (and its lazily built lookup structures) keeps
    per-shard memory at the column slices alone and — crucially — keeps
    term ids and lexicographic ranks identical across shards, so
    per-shard match-list orders interleave into the global order.
    """
    rows_per_shard = partition_rows(store, n_shards, strategy)
    shards = []
    for rows in rows_per_shard:
        shard = ColumnarStore(
            store.terms,
            store.subjects[rows],
            store.predicates[rows],
            store.objects[rows],
            store.scores[rows],
        )
        # Delegate dictionary lookups to the parent *lazily*: nothing is
        # decoded or argsorted here, and whichever shard needs the term
        # map or ranks first resolves to one structure on the parent
        # instead of n_shards rebuilds.  Keeps mmap-attached stores
        # (whose ranks are a snapshot section and whose term map may
        # never be needed) shardable without touching the dictionary.
        shard.share_lexicon_from(store)
        shards.append(shard)
    return tuple(shards)


class ShardLeafInput(NamedTuple):
    """What a lazy per-shard leaf scan needs before building anything.

    ``match_list`` is the shard's cached list when one already exists
    (so the scan starts warm); otherwise ``n_matches``/``max_score``
    come from a vectorised peek — no decode, no sort.  ``graph`` is
    whatever object serves the shard's list on first pull: the shard's
    :class:`~repro.kg.columnar.ColumnarGraph`, or a live overlay slice
    (:mod:`repro.kg.delta`) exposing the same ``match_list`` surface.
    """

    graph: KnowledgeGraph
    n_matches: int
    max_score: float
    match_list: MatchList | None


class ShardedPatternIndex(ColumnarPatternIndex):
    """Serves the *merged* global match list, built shard by shard.

    Candidate retrieval is inherited from the full store (identical
    semantics, one mask instead of N).  Match-list construction asks each
    shard graph for its list — through the per-shard caches — and merges;
    the merged list is then cached by the inherited machinery (internal
    dict or the attached external cache), so the service layer sees one
    graph with one pattern-keyed cache, exactly as before.
    """

    def _build_match_list(self, pattern: TriplePattern, key: PatternKey) -> MatchList:
        graph: ShardedGraph = self._graph  # type: ignore[assignment]
        parts = [shard.match_list(pattern) for shard in graph.shards]
        return merge_match_lists(key, parts)


class ShardedGraph(ColumnarGraph):
    """A read-only columnar graph partitioned into N independent shards.

    Behaviourally identical to the :class:`~repro.kg.columnar.ColumnarGraph`
    it was built from — every match list it serves is the exact global
    list — but each shard is a fully functional graph of its own (column
    slice + pattern index + bounded match-list cache), which is what the
    engine's sharded leaf scans and the service layer's per-shard caches
    exploit.

    Parameters
    ----------
    store:
        The full column store to partition.
    n_shards:
        Number of shards (>= 1; 1 degenerates to a single-shard wrapper).
    strategy:
        ``"hash-subject"`` or ``"score-range"`` (see the module docs).
    shard_cache_capacity:
        Capacity of each per-shard :class:`~repro.service.cache.MatchListCache`.
    """

    def __init__(
        self,
        store: ColumnarStore,
        n_shards: int,
        strategy: ShardStrategy = "hash-subject",
        name: str = "kg",
        shard_cache_capacity: int = DEFAULT_SHARD_CACHE_CAPACITY,
    ) -> None:
        super().__init__(store, name=name)
        self._index = ShardedPatternIndex(self)
        if strategy not in SHARD_STRATEGIES:
            raise KnowledgeGraphError(
                f"unknown shard strategy {strategy!r}; "
                f"choose from {SHARD_STRATEGIES}"
            )
        self.n_shards = n_shards
        self.strategy: ShardStrategy = strategy
        shard_stores = partition_store(store, n_shards, strategy)
        self.shards: tuple[ColumnarGraph, ...] = tuple(
            ColumnarGraph(shard_store, name=f"{name}#s{i}")
            for i, shard_store in enumerate(shard_stores)
        )
        # One PR-1 cache per shard: lazy import keeps kg -> service a
        # runtime (not import-time) edge, avoiding the package cycle.
        from repro.service.cache import MatchListCache

        self.shard_caches: tuple[MatchListCache, ...] = tuple(
            MatchListCache(shard_cache_capacity) for _ in self.shards
        )
        for shard, cache in zip(self.shards, self.shard_caches):
            shard.attach_match_list_cache(cache)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(  # type: ignore[override]
        cls,
        graph: KnowledgeGraph,
        n_shards: int,
        strategy: ShardStrategy = "hash-subject",
        name: str | None = None,
        shard_cache_capacity: int = DEFAULT_SHARD_CACHE_CAPACITY,
    ) -> "ShardedGraph":
        """Shard any :class:`KnowledgeGraph` (freezing to columns first)."""
        if isinstance(graph, ColumnarGraph):
            store = graph.store
        else:
            store = ColumnarStore.from_triples(graph.triples())
        return cls(
            store,
            n_shards,
            strategy=strategy,
            name=name or graph.name,
            shard_cache_capacity=shard_cache_capacity,
        )

    # ------------------------------------------------------------------
    # Shard-aware access
    # ------------------------------------------------------------------
    def shard_sizes(self) -> tuple[int, ...]:
        """Triples per shard (sums to :attr:`size`)."""
        return tuple(shard.size for shard in self.shards)

    def shard_leaf_inputs(
        self, pattern: TriplePattern
    ) -> tuple[float, list[ShardLeafInput]]:
        """Per-shard leaf-scan inputs plus the global normaliser.

        For each shard: the cached match list when present, otherwise a
        vectorised peek at ``(n_matches, max raw score)`` — so the caller
        can defer (possibly forever, via threshold early termination)
        the expensive decode-and-sort of cold shards.  The returned
        global maximum is exactly :meth:`match_list`'s normaliser.
        """
        key = pattern.key()
        inputs: list[ShardLeafInput] = []
        global_max = 0.0
        for shard, cache in zip(self.shards, self.shard_caches):
            # One version-aware lookup per shard: a plain `get` both serves
            # warm lists and counts the miss, where a version-blind
            # `__contains__` pre-check would skew the cache statistics.
            match_list = cache.get(key, shard.version)
            if match_list is not None:
                n_matches, local_max = len(match_list), match_list.max_score
            else:
                n_matches, local_max = shard.peek_match(pattern)
            inputs.append(ShardLeafInput(shard, n_matches, local_max, match_list))
            if local_max > global_max:
                global_max = local_max
        return global_max, inputs

    def shard_cache_stats(self) -> "CacheStats":
        """Aggregated counters over every per-shard cache."""
        from repro.service.cache import CacheStats

        stats = [cache.stats() for cache in self.shard_caches]
        return CacheStats(
            hits=sum(s.hits for s in stats),
            misses=sum(s.misses for s in stats),
            evictions=sum(s.evictions for s in stats),
            invalidations=sum(s.invalidations for s in stats),
            size=sum(s.size for s in stats),
            capacity=sum(s.capacity for s in stats),
        )

    def invalidate_caches(self) -> None:
        """Drop the merged-list caches *and* every shard's caches."""
        super().invalidate_caches()
        for shard in self.shards:
            shard.invalidate_caches()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedGraph(name={self.name!r}, size={self.size}, "
            f"n_shards={self.n_shards}, strategy={self.strategy!r})"
        )
