"""(De)serialisation of scored knowledge graphs.

Three formats:

* **Scored TSV** — ``subject<TAB>predicate<TAB>object<TAB>score`` per line,
  the native text format of this repo (lossless, trivially diffable).
* **Binary snapshot** — a versioned ``.npz`` container holding the
  dictionary-encoded columns of :class:`~repro.kg.columnar.ColumnarStore`;
  loads an order of magnitude faster than TSV at scale because nothing is
  reparsed or re-interned.  Format spec: ``docs/storage.md``.
* **N-triples-ish** — ``<s> <p> <o> .`` lines without scores, for
  interoperability with standard RDF tooling; scores default to 1.0 on
  load and are dropped on save.

Plus the **mutation TSV** (:func:`iter_update_tsv`) — ``+``/``-``
prefixed lines describing adds, overwrites and removes, the feed of the
live-update overlay (:mod:`repro.kg.delta`) and the ``update`` CLI
subcommand.

The snapshot helpers import NumPy lazily, so the text formats remain
dependency-free.
"""

from __future__ import annotations

import gzip
import io
import json
import math
import os
import struct
import zlib
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator, TextIO

from repro.errors import KnowledgeGraphError
from repro.kg.graph import KnowledgeGraph
from repro.kg.triple import Triple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kg.columnar import ColumnarGraph, ColumnarStore
    from repro.kg.delta import GraphUpdate

#: Magic string identifying a snapshot ``.npz`` as ours.
SNAPSHOT_FORMAT = "spec-qp/kg-snapshot"

#: Highest ``.npz`` container version this reader understands.
SNAPSHOT_VERSION = 1

#: Format version of the v2 packed snapshot (``.kg2``).
SNAPSHOT_V2_VERSION = 2

#: Leading magic bytes of a v2 packed snapshot (``.kg2``).  PNG-style:
#: high bit + CRLF + ^Z + LF catch text-mode mangling and truncation.
SNAPSHOT_V2_MAGIC = b"\x89KG2\r\n\x1a\n"

#: Conventional suffix of v2 packed snapshots.
SNAPSHOT_V2_SUFFIX = ".kg2"

#: Section start alignment inside a v2 file (cache-line sized).
_V2_ALIGN = 64

#: v2 sections in file order.  ``term_rank`` persists the lexicographic
#: ranks :meth:`ColumnarStore._ranks` would otherwise argsort on first
#: use, so attaching never touches the dictionary.
_V2_SECTIONS = ("terms", "term_rank", "subjects", "predicates", "objects", "scores")

_V2_HINT = (
    "expected a v2 packed snapshot (magic %r); v1 snapshots are .npz "
    "containers readable by load_snapshot — see docs/storage.md" % SNAPSHOT_V2_MAGIC
)


def _open_text(path: str | Path, mode: str) -> TextIO:
    path = Path(path)
    if path.suffix == ".gz":
        return io.TextIOWrapper(gzip.open(path, mode + "b"), encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def _parse_score(raw_score: str, path: str | Path, line_no: int) -> float:
    """Parse a TSV score field, rejecting junk with the offending line.

    ``float()`` happily parses ``'nan'``/``'inf'``/``'-inf'``; a score
    that is not a finite number poisons every normalised match list
    downstream, so reject it at the source.
    """
    try:
        score = float(raw_score)
    except ValueError:
        raise KnowledgeGraphError(
            f"{path}:{line_no}: bad score {raw_score!r}"
        ) from None
    if not math.isfinite(score):
        raise KnowledgeGraphError(
            f"{path}:{line_no}: non-finite score {raw_score!r}"
        )
    return score


# ----------------------------------------------------------------------
# Scored TSV
# ----------------------------------------------------------------------
def save_tsv(graph: KnowledgeGraph, path: str | Path) -> int:
    """Write *graph* as scored TSV; returns the number of lines written.

    Columnar graphs take a vectorised path (no Triple objects built);
    the bytes written are identical either way.
    """
    count = 0
    with _open_text(path, "w") as handle:
        for line in _tsv_lines(graph):
            handle.write(line)
            count += 1
    return count


def _tsv_lines(graph: KnowledgeGraph) -> Iterator[str]:
    store = getattr(graph, "store", None)
    if store is not None:
        from repro.kg.columnar import ColumnarStore

        if isinstance(store, ColumnarStore):
            yield from store.tsv_lines()
            return
    for triple in sorted(graph.triples(), key=lambda t: t.spo):
        yield (
            f"{triple.subject}\t{triple.predicate}\t{triple.object}\t{triple.score:.10g}\n"
        )


def iter_tsv(path: str | Path) -> Iterator[Triple]:
    """Yield triples from a scored TSV file, validating as we go."""
    with _open_text(path, "r") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.rstrip("\n")
            if not line or line.startswith("#"):
                continue
            parts = line.split("\t")
            if len(parts) == 3:
                s, p, o = parts
                score = 1.0
            elif len(parts) == 4:
                s, p, o, raw_score = parts
                score = _parse_score(raw_score, path, line_no)
            else:
                raise KnowledgeGraphError(
                    f"{path}:{line_no}: expected 3 or 4 tab-separated fields, "
                    f"got {len(parts)}"
                )
            yield Triple(s, p, o, score)


def load_tsv(path: str | Path, name: str | None = None) -> KnowledgeGraph:
    """Load a scored TSV file into a fresh :class:`KnowledgeGraph`."""
    graph = KnowledgeGraph(name=name or Path(path).stem)
    graph.add_triples(iter_tsv(path))
    return graph


# ----------------------------------------------------------------------
# Mutation TSV (the live-update feed)
# ----------------------------------------------------------------------
def iter_update_tsv(path: str | Path) -> "Iterator[GraphUpdate]":
    """Yield graph updates from a mutation TSV, validating as we go.

    One mutation per line: ``+<TAB>s<TAB>p<TAB>o<TAB>score`` adds or
    overwrites a scored triple (the score field is optional, defaulting
    to 1.0), ``-<TAB>s<TAB>p<TAB>o`` removes one.  Blank lines and ``#``
    comments are skipped.  This is the on-disk feed of the ``update``
    CLI subcommand and of :meth:`repro.kg.delta.LiveGraph.apply_updates`.
    """
    from repro.kg.delta import GraphUpdate

    with _open_text(path, "r") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.rstrip("\n")
            if not line or line.startswith("#"):
                continue
            parts = line.split("\t")
            op = parts[0]
            if op == "+":
                if len(parts) == 4:
                    score = 1.0
                elif len(parts) == 5:
                    score = _parse_score(parts[4], path, line_no)
                else:
                    raise KnowledgeGraphError(
                        f"{path}:{line_no}: '+' update expects 4 or 5 "
                        f"tab-separated fields, got {len(parts)}"
                    )
                yield GraphUpdate.add(parts[1], parts[2], parts[3], score)
            elif op == "-":
                if len(parts) != 4:
                    raise KnowledgeGraphError(
                        f"{path}:{line_no}: '-' update expects 4 "
                        f"tab-separated fields, got {len(parts)}"
                    )
                yield GraphUpdate.remove(parts[1], parts[2], parts[3])
            else:
                raise KnowledgeGraphError(
                    f"{path}:{line_no}: update op must be '+' or '-', got {op!r}"
                )


# ----------------------------------------------------------------------
# Binary snapshots (columnar .npz)
# ----------------------------------------------------------------------
def _columnar_store_of(graph: KnowledgeGraph) -> "ColumnarStore":
    """The graph's columnar store, interning on the fly if needed.

    Non-columnar graphs (object-backed, live-update overlays) are frozen
    through :meth:`ColumnarStore.from_triples`, which sees the *merged*
    triple set — so snapshotting a :class:`~repro.kg.delta.LiveGraph`
    implicitly compacts it on disk.
    """
    from repro.kg.columnar import ColumnarStore

    store = getattr(graph, "store", None)
    if isinstance(store, ColumnarStore):
        return store
    return ColumnarStore.from_triples(graph.triples())


class _AtomicBinaryWriter:
    """Write-to-temp-then-``os.replace`` so crashed writers never leave a
    truncated snapshot at the destination path.  ``os.replace`` is atomic
    on POSIX and Windows for same-filesystem paths, which holds because
    the temp file lives next to the destination."""

    def __init__(self, path: Path) -> None:
        self.path = path
        self.temp = path.with_name(f".{path.name}.tmp-{os.getpid()}")

    def __enter__(self) -> io.BufferedWriter:
        self._handle = open(self.temp, "wb")
        return self._handle

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self._handle.close()
        if exc_type is None:
            os.replace(self.temp, self.path)
        else:
            try:
                os.unlink(self.temp)
            except OSError:  # pragma: no cover - best-effort cleanup
                pass


def save_snapshot(graph: KnowledgeGraph, path: str | Path) -> int:
    """Persist *graph* as a versioned binary snapshot; returns triple count.

    The snapshot is a compressed ``.npz`` holding the graph's
    dictionary-encoded columns plus a header (format magic, version,
    graph name) — see ``docs/storage.md`` for the exact layout.  Any
    graph can be saved; non-columnar graphs are interned on the fly.
    Loading with :func:`load_snapshot` skips parsing and interning
    entirely, which is the whole point of the format.
    """
    import numpy as np

    store = _columnar_store_of(graph)
    # Refuse to write a file load_snapshot would reject (e.g. a NaN score
    # smuggled past Triple's `score < 0` check): fail at save time.
    store.validate()
    path = Path(path)
    with _AtomicBinaryWriter(path) as handle:
        np.savez_compressed(
            handle,
            format=np.array(SNAPSHOT_FORMAT),
            version=np.array(SNAPSHOT_VERSION, dtype=np.int64),
            name=np.array(graph.name),
            terms=store.terms,
            subjects=store.subjects,
            predicates=store.predicates,
            objects=store.objects,
            scores=store.scores,
        )
    return store.n_triples


def load_snapshot(
    path: str | Path,
    name: str | None = None,
    mutable: bool = False,
) -> KnowledgeGraph:
    """Load a binary snapshot written by :func:`save_snapshot`.

    Returns a read-only :class:`~repro.kg.columnar.ColumnarGraph` by
    default (columns are adopted as-is after validation — no per-triple
    work).  Pass ``mutable=True`` to decode into an ordinary object-backed
    :class:`KnowledgeGraph` instead.  A file that is not a snapshot, or a
    snapshot from a newer format version, raises
    :class:`~repro.errors.KnowledgeGraphError`.

    Dispatches on content, not suffix: a v2 packed snapshot (see
    :func:`save_snapshot_v2`) is recognised by its magic bytes and
    attached via :func:`load_snapshot_v2` (memory-mapped, O(ms)).
    """
    import zipfile

    import numpy as np

    from repro.kg.columnar import ColumnarGraph, ColumnarStore

    path = Path(path)
    if _sniff_v2(path):
        return load_snapshot_v2(path, name=name, mutable=mutable)
    try:
        with np.load(path, allow_pickle=False) as data:
            try:
                magic = str(data["format"][()])
                version = int(data["version"][()])
                stored_name = str(data["name"][()])
                arrays = {
                    key: data[key]
                    for key in ("terms", "subjects", "predicates", "objects", "scores")
                }
            except KeyError as missing:
                raise KnowledgeGraphError(
                    f"{path}: not a knowledge-graph snapshot "
                    f"(missing member {missing}; a v1 .npz snapshot carries "
                    f"format/version/name/terms/columns — see docs/storage.md)"
                ) from None
    except (zipfile.BadZipFile, ValueError, OSError) as error:
        raise KnowledgeGraphError(
            f"{path}: cannot read snapshot: {error} "
            f"(v1 snapshots are .npz containers, v2 packed snapshots start "
            f"with the {SNAPSHOT_V2_MAGIC!r} magic — see docs/storage.md)"
        ) from None
    if magic != SNAPSHOT_FORMAT:
        raise KnowledgeGraphError(
            f"{path}: bad snapshot magic {magic!r} (expected {SNAPSHOT_FORMAT!r})"
        )
    if not 1 <= version <= SNAPSHOT_VERSION:
        raise KnowledgeGraphError(
            f"{path}: snapshot version {version} unsupported "
            f"(this reader handles 1..{SNAPSHOT_VERSION})"
        )
    try:
        store = ColumnarStore.from_arrays(
            arrays["terms"],
            arrays["subjects"],
            arrays["predicates"],
            arrays["objects"],
            arrays["scores"],
            validate=True,
        )
    except KnowledgeGraphError as error:
        raise KnowledgeGraphError(f"{path}: corrupt snapshot: {error}") from None
    graph = ColumnarGraph(store, name=name or stored_name or path.stem)
    return graph.thaw() if mutable else graph


# ----------------------------------------------------------------------
# v2 packed snapshots (.kg2): mmap-attachable raw columns + JSON manifest
# ----------------------------------------------------------------------
def _sniff_v2(path: Path) -> bool:
    """Whether *path* starts with the v2 packed-snapshot magic."""
    try:
        with open(path, "rb") as handle:
            return handle.read(len(SNAPSHOT_V2_MAGIC)) == SNAPSHOT_V2_MAGIC
    except OSError:
        return False


def _v2_error(path: str | Path, why: str) -> KnowledgeGraphError:
    return KnowledgeGraphError(f"{path}: {why} ({_V2_HINT})")


def save_snapshot_v2(graph: KnowledgeGraph, path: str | Path) -> int:
    """Persist *graph* as a v2 packed snapshot; returns the triple count.

    Layout (all integers little-endian, see ``docs/storage.md``)::

        magic (8 B) | section bytes, each start 64-byte aligned | JSON
        manifest | uint64 manifest length

    The manifest footer keeps section offsets independent of the
    manifest's own size; sections are raw C-contiguous array bytes that
    :func:`numpy.memmap` can attach with zero copies.  Two sections go
    beyond the v1 members: ``term_rank`` persists the lexicographic term
    ranks (so attaching never argsorts the dictionary), and the four row
    columns are stored in canonical Definition-5 score order — every
    match list is then a gather over *forward-contiguous* file regions,
    which is what keeps cold page-cache misses sequential.  Row order is
    not part of the graph's identity: every user-visible ordering (match
    lists, answers, TSV export) re-sorts by total orders.

    Writes are atomic (temp file + ``os.replace``); a crashed writer
    never leaves a truncated file at *path*.
    """
    import numpy as np

    store = _columnar_store_of(graph)
    store.validate()
    order = store.score_order(np.arange(store.n_triples, dtype=np.int64))
    term_width = store.terms.dtype.itemsize // 4 if store.terms.size else 1
    arrays = {
        "terms": np.ascontiguousarray(store.terms, dtype=f"<U{term_width}"),
        "term_rank": np.ascontiguousarray(store._ranks(), dtype="<i8"),
        "subjects": np.ascontiguousarray(store.subjects[order], dtype="<i4"),
        "predicates": np.ascontiguousarray(store.predicates[order], dtype="<i4"),
        "objects": np.ascontiguousarray(store.objects[order], dtype="<i4"),
        "scores": np.ascontiguousarray(store.scores[order], dtype="<f8"),
    }
    path = Path(path)
    sections: dict[str, dict[str, object]] = {}
    with _AtomicBinaryWriter(path) as handle:
        handle.write(SNAPSHOT_V2_MAGIC)
        position = len(SNAPSHOT_V2_MAGIC)
        for name in _V2_SECTIONS:
            array = arrays[name]
            pad = (-position) % _V2_ALIGN
            handle.write(b"\x00" * pad)
            position += pad
            data = array.tobytes()
            handle.write(data)
            sections[name] = {
                "dtype": array.dtype.str,
                "shape": [int(array.shape[0])],
                "offset": position,
                "nbytes": len(data),
                "crc32": zlib.crc32(data),
            }
            position += len(data)
        manifest = json.dumps(
            {
                "format": SNAPSHOT_FORMAT,
                "version": SNAPSHOT_V2_VERSION,
                "name": graph.name,
                "n_triples": store.n_triples,
                "n_terms": store.n_terms,
                "row_order": "score",
                "checksum": "crc32",
                "sections": sections,
            },
            sort_keys=True,
        ).encode("utf-8")
        handle.write(manifest)
        handle.write(struct.pack("<Q", len(manifest)))
    return store.n_triples


def read_snapshot_v2_manifest(path: str | Path) -> dict:
    """Parse and structurally validate a v2 snapshot's JSON manifest.

    Every failure mode — wrong magic, truncation, mangled JSON, missing
    or malformed sections, out-of-bounds offsets — raises
    :class:`KnowledgeGraphError` naming the path and the expected format,
    never a raw ``KeyError``/``json`` traceback.
    """
    path = Path(path)
    try:
        with open(path, "rb") as handle:
            head = handle.read(len(SNAPSHOT_V2_MAGIC))
            if head != SNAPSHOT_V2_MAGIC:
                if head[:2] == b"PK":
                    raise _v2_error(
                        path,
                        "this is a zip container — likely a v1 .npz snapshot; "
                        "use load_snapshot",
                    )
                raise _v2_error(path, f"bad magic {head!r}")
            handle.seek(0, os.SEEK_END)
            size = handle.tell()
            if size < len(SNAPSHOT_V2_MAGIC) + 8:
                raise _v2_error(path, f"truncated file ({size} bytes)")
            handle.seek(size - 8)
            (manifest_len,) = struct.unpack("<Q", handle.read(8))
            if not 2 <= manifest_len <= size - len(SNAPSHOT_V2_MAGIC) - 8:
                raise _v2_error(
                    path, f"manifest length {manifest_len} outside file bounds"
                )
            handle.seek(size - 8 - manifest_len)
            raw = handle.read(manifest_len)
    except OSError as error:
        raise KnowledgeGraphError(f"{path}: cannot read snapshot: {error}") from None
    try:
        manifest = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise _v2_error(path, f"manifest is not valid JSON: {error}") from None
    if not isinstance(manifest, dict):
        raise _v2_error(path, "manifest must be a JSON object")
    if manifest.get("format") != SNAPSHOT_FORMAT:
        raise _v2_error(
            path, f"bad snapshot magic {manifest.get('format')!r} in manifest"
        )
    version = manifest.get("version")
    if version != SNAPSHOT_V2_VERSION:
        raise _v2_error(
            path,
            f"snapshot version {version!r} unsupported "
            f"(this reader handles packed version {SNAPSHOT_V2_VERSION})",
        )
    sections = manifest.get("sections")
    if not isinstance(sections, dict):
        raise _v2_error(path, "manifest has no sections table")
    for name in _V2_SECTIONS:
        section = sections.get(name)
        if not isinstance(section, dict):
            raise _v2_error(path, f"manifest is missing section {name!r}")
        try:
            offset = int(section["offset"])
            nbytes = int(section["nbytes"])
            (length,) = (int(value) for value in section["shape"])
            dtype = str(section["dtype"])
        except (KeyError, TypeError, ValueError) as error:
            raise _v2_error(
                path, f"malformed section {name!r}: {error!r}"
            ) from None
        if offset < len(SNAPSHOT_V2_MAGIC) or offset + nbytes > size - 8 - manifest_len:
            raise _v2_error(
                path,
                f"section {name!r} [{offset}, {offset + nbytes}) "
                f"outside file bounds",
            )
        if length < 0 or (dtype[:2] not in ("<U", "<i", "<f")):
            raise _v2_error(path, f"section {name!r} has bad dtype/shape")
    return manifest


def _v2_section_arrays(path: Path, manifest: dict, verify: bool) -> dict:
    import numpy as np

    arrays: dict[str, np.ndarray] = {}
    for name in _V2_SECTIONS:
        section = manifest["sections"][name]
        try:
            dtype = np.dtype(str(section["dtype"]))
        except TypeError as error:
            raise _v2_error(path, f"section {name!r}: {error}") from None
        length = int(section["shape"][0])
        if length * dtype.itemsize != int(section["nbytes"]):
            raise _v2_error(
                path,
                f"section {name!r} declares {section['nbytes']} bytes for "
                f"{length} x {dtype}",
            )
        if length:
            array = np.memmap(
                path, dtype=dtype, mode="r",
                offset=int(section["offset"]), shape=(length,),
            )
        else:
            array = np.empty(0, dtype=dtype)
        if verify:
            checksum = zlib.crc32(array.tobytes())
            if checksum != int(section.get("crc32", -1)):
                raise _v2_error(
                    path,
                    f"section {name!r} checksum mismatch "
                    f"(stored {section.get('crc32')}, computed {checksum})",
                )
        arrays[name] = array
    return arrays


def open_snapshot_v2_store(path: str | Path, *, verify: bool = False) -> "ColumnarStore":
    """Attach a v2 packed snapshot as a memory-mapped :class:`ColumnarStore`.

    The implementation behind :meth:`ColumnarStore.open_mmap` — O(ms):
    one manifest parse plus six ``np.memmap`` views; no column is read,
    validated, decompressed or copied.  ``verify=True`` checks section
    checksums and full store invariants (reads everything — the choice
    between trust-and-attach and verify-and-attach is the caller's).
    """
    store, _ = _attach_v2(Path(path), verify=verify)
    return store


def _attach_v2(path: Path, verify: bool) -> "tuple[ColumnarStore, dict]":
    from repro.kg.columnar import ColumnarStore

    manifest = read_snapshot_v2_manifest(path)
    arrays = _v2_section_arrays(path, manifest, verify)
    if len(arrays["term_rank"]) != len(arrays["terms"]):
        raise _v2_error(
            path,
            f"term_rank length {len(arrays['term_rank'])} != "
            f"n_terms {len(arrays['terms'])}",
        )
    try:
        store = ColumnarStore(
            arrays["terms"],
            arrays["subjects"],
            arrays["predicates"],
            arrays["objects"],
            arrays["scores"],
        )
    except KnowledgeGraphError as error:
        raise _v2_error(path, f"corrupt snapshot: {error}") from None
    store._term_rank = arrays["term_rank"]
    store.source_path = str(path)
    if verify:
        try:
            store.validate()
        except KnowledgeGraphError as error:
            raise _v2_error(path, f"corrupt snapshot: {error}") from None
    return store, manifest


def load_snapshot_v2(
    path: str | Path,
    name: str | None = None,
    mutable: bool = False,
    *,
    mmap: bool = True,
    verify: bool = False,
) -> KnowledgeGraph:
    """Load a v2 packed snapshot written by :func:`save_snapshot_v2`.

    Returns a read-only :class:`~repro.kg.columnar.ColumnarGraph` whose
    columns are ``np.memmap`` views over the file (pass ``mmap=False``
    to copy them into process-private memory, or ``mutable=True`` for an
    object-backed editable graph).  Attach time is O(ms) independent of
    graph size; processes attaching the same file share one physical
    copy of the columns through the page cache.
    """
    import numpy as np

    from repro.kg.columnar import ColumnarGraph

    path = Path(path)
    store, manifest = _attach_v2(path, verify=verify)
    if not mmap:
        from repro.kg.columnar import ColumnarStore

        copied = ColumnarStore(
            np.array(store.terms),
            np.array(store.subjects),
            np.array(store.predicates),
            np.array(store.objects),
            np.array(store.scores),
        )
        copied._term_rank = np.array(store._ranks())
        store = copied
    stored_name = str(manifest.get("name", "")) or path.stem
    graph = ColumnarGraph(store, name=name or stored_name)
    return graph.thaw() if mutable else graph


# ----------------------------------------------------------------------
# N-triples-ish
# ----------------------------------------------------------------------
def _angle(term: str) -> str:
    return f"<{term}>"


def _unangle(token: str, where: str) -> str:
    if len(token) >= 2 and token[0] == "<" and token[-1] == ">":
        return token[1:-1]
    raise KnowledgeGraphError(f"{where}: expected <term>, got {token!r}")


def save_ntriples(graph: KnowledgeGraph, path: str | Path) -> int:
    """Write *graph* without scores in a simple N-triples-like syntax."""
    count = 0
    with _open_text(path, "w") as handle:
        for triple in sorted(graph.triples(), key=lambda t: t.spo):
            handle.write(
                f"{_angle(triple.subject)} {_angle(triple.predicate)} "
                f"{_angle(triple.object)} .\n"
            )
            count += 1
    return count


def iter_ntriples(path: str | Path) -> Iterator[Triple]:
    """Yield triples from an N-triples-ish file (scores default to 1.0)."""
    with _open_text(path, "r") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            if not line.endswith("."):
                raise KnowledgeGraphError(f"{path}:{line_no}: missing trailing '.'")
            tokens = line[:-1].split()
            if len(tokens) != 3:
                raise KnowledgeGraphError(
                    f"{path}:{line_no}: expected 3 terms, got {len(tokens)}"
                )
            where = f"{path}:{line_no}"
            yield Triple(
                _unangle(tokens[0], where),
                _unangle(tokens[1], where),
                _unangle(tokens[2], where),
                1.0,
            )


def load_ntriples(path: str | Path, name: str | None = None) -> KnowledgeGraph:
    """Load an N-triples-ish file into a fresh :class:`KnowledgeGraph`."""
    graph = KnowledgeGraph(name=name or Path(path).stem)
    graph.add_triples(iter_ntriples(path))
    return graph


# ----------------------------------------------------------------------
# Convenience
# ----------------------------------------------------------------------
def from_tuples(
    rows: Iterable[tuple[str, str, str] | tuple[str, str, str, float]],
    name: str = "kg",
) -> KnowledgeGraph:
    """Build a graph from plain tuples, a convenience for tests/examples."""
    graph = KnowledgeGraph(name=name)
    for row in rows:
        if len(row) == 3:
            graph.add(*row)  # type: ignore[misc]
        elif len(row) == 4:
            graph.add(row[0], row[1], row[2], score=float(row[3]))
        else:
            raise KnowledgeGraphError(f"expected 3- or 4-tuple, got {row!r}")
    return graph
