"""(De)serialisation of scored knowledge graphs.

Two formats:

* **Scored TSV** — ``subject<TAB>predicate<TAB>object<TAB>score`` per line,
  the native format of this repo (lossless, trivially diffable).
* **N-triples-ish** — ``<s> <p> <o> .`` lines without scores, for
  interoperability with standard RDF tooling; scores default to 1.0 on
  load and are dropped on save.
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path
from typing import Iterable, Iterator, TextIO

from repro.errors import KnowledgeGraphError
from repro.kg.graph import KnowledgeGraph
from repro.kg.triple import Triple


def _open_text(path: str | Path, mode: str) -> TextIO:
    path = Path(path)
    if path.suffix == ".gz":
        return io.TextIOWrapper(gzip.open(path, mode + "b"), encoding="utf-8")
    return open(path, mode, encoding="utf-8")


# ----------------------------------------------------------------------
# Scored TSV
# ----------------------------------------------------------------------
def save_tsv(graph: KnowledgeGraph, path: str | Path) -> int:
    """Write *graph* as scored TSV; returns the number of lines written."""
    count = 0
    with _open_text(path, "w") as handle:
        for triple in sorted(graph.triples(), key=lambda t: t.spo):
            handle.write(
                f"{triple.subject}\t{triple.predicate}\t{triple.object}\t{triple.score:.10g}\n"
            )
            count += 1
    return count


def iter_tsv(path: str | Path) -> Iterator[Triple]:
    """Yield triples from a scored TSV file, validating as we go."""
    with _open_text(path, "r") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.rstrip("\n")
            if not line or line.startswith("#"):
                continue
            parts = line.split("\t")
            if len(parts) == 3:
                s, p, o = parts
                score = 1.0
            elif len(parts) == 4:
                s, p, o, raw_score = parts
                try:
                    score = float(raw_score)
                except ValueError:
                    raise KnowledgeGraphError(
                        f"{path}:{line_no}: bad score {raw_score!r}"
                    ) from None
            else:
                raise KnowledgeGraphError(
                    f"{path}:{line_no}: expected 3 or 4 tab-separated fields, "
                    f"got {len(parts)}"
                )
            yield Triple(s, p, o, score)


def load_tsv(path: str | Path, name: str | None = None) -> KnowledgeGraph:
    """Load a scored TSV file into a fresh :class:`KnowledgeGraph`."""
    graph = KnowledgeGraph(name=name or Path(path).stem)
    graph.add_triples(iter_tsv(path))
    return graph


# ----------------------------------------------------------------------
# N-triples-ish
# ----------------------------------------------------------------------
def _angle(term: str) -> str:
    return f"<{term}>"


def _unangle(token: str, where: str) -> str:
    if len(token) >= 2 and token[0] == "<" and token[-1] == ">":
        return token[1:-1]
    raise KnowledgeGraphError(f"{where}: expected <term>, got {token!r}")


def save_ntriples(graph: KnowledgeGraph, path: str | Path) -> int:
    """Write *graph* without scores in a simple N-triples-like syntax."""
    count = 0
    with _open_text(path, "w") as handle:
        for triple in sorted(graph.triples(), key=lambda t: t.spo):
            handle.write(
                f"{_angle(triple.subject)} {_angle(triple.predicate)} "
                f"{_angle(triple.object)} .\n"
            )
            count += 1
    return count


def iter_ntriples(path: str | Path) -> Iterator[Triple]:
    with _open_text(path, "r") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            if not line.endswith("."):
                raise KnowledgeGraphError(f"{path}:{line_no}: missing trailing '.'")
            tokens = line[:-1].split()
            if len(tokens) != 3:
                raise KnowledgeGraphError(
                    f"{path}:{line_no}: expected 3 terms, got {len(tokens)}"
                )
            where = f"{path}:{line_no}"
            yield Triple(
                _unangle(tokens[0], where),
                _unangle(tokens[1], where),
                _unangle(tokens[2], where),
                1.0,
            )


def load_ntriples(path: str | Path, name: str | None = None) -> KnowledgeGraph:
    graph = KnowledgeGraph(name=name or Path(path).stem)
    graph.add_triples(iter_ntriples(path))
    return graph


# ----------------------------------------------------------------------
# Convenience
# ----------------------------------------------------------------------
def from_tuples(
    rows: Iterable[tuple[str, str, str] | tuple[str, str, str, float]],
    name: str = "kg",
) -> KnowledgeGraph:
    """Build a graph from plain tuples, a convenience for tests/examples."""
    graph = KnowledgeGraph(name=name)
    for row in rows:
        if len(row) == 3:
            graph.add(*row)  # type: ignore[misc]
        elif len(row) == 4:
            graph.add(row[0], row[1], row[2], score=float(row[3]))
        else:
            raise KnowledgeGraphError(f"expected 3- or 4-tuple, got {row!r}")
    return graph
