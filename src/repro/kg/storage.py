"""(De)serialisation of scored knowledge graphs.

Three formats:

* **Scored TSV** — ``subject<TAB>predicate<TAB>object<TAB>score`` per line,
  the native text format of this repo (lossless, trivially diffable).
* **Binary snapshot** — a versioned ``.npz`` container holding the
  dictionary-encoded columns of :class:`~repro.kg.columnar.ColumnarStore`;
  loads an order of magnitude faster than TSV at scale because nothing is
  reparsed or re-interned.  Format spec: ``docs/storage.md``.
* **N-triples-ish** — ``<s> <p> <o> .`` lines without scores, for
  interoperability with standard RDF tooling; scores default to 1.0 on
  load and are dropped on save.

Plus the **mutation TSV** (:func:`iter_update_tsv`) — ``+``/``-``
prefixed lines describing adds, overwrites and removes, the feed of the
live-update overlay (:mod:`repro.kg.delta`) and the ``update`` CLI
subcommand.

The snapshot helpers import NumPy lazily, so the text formats remain
dependency-free.
"""

from __future__ import annotations

import gzip
import io
import math
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator, TextIO

from repro.errors import KnowledgeGraphError
from repro.kg.graph import KnowledgeGraph
from repro.kg.triple import Triple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kg.columnar import ColumnarGraph
    from repro.kg.delta import GraphUpdate

#: Magic string identifying a snapshot ``.npz`` as ours.
SNAPSHOT_FORMAT = "spec-qp/kg-snapshot"

#: Highest snapshot version this reader understands.
SNAPSHOT_VERSION = 1


def _open_text(path: str | Path, mode: str) -> TextIO:
    path = Path(path)
    if path.suffix == ".gz":
        return io.TextIOWrapper(gzip.open(path, mode + "b"), encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def _parse_score(raw_score: str, path: str | Path, line_no: int) -> float:
    """Parse a TSV score field, rejecting junk with the offending line.

    ``float()`` happily parses ``'nan'``/``'inf'``/``'-inf'``; a score
    that is not a finite number poisons every normalised match list
    downstream, so reject it at the source.
    """
    try:
        score = float(raw_score)
    except ValueError:
        raise KnowledgeGraphError(
            f"{path}:{line_no}: bad score {raw_score!r}"
        ) from None
    if not math.isfinite(score):
        raise KnowledgeGraphError(
            f"{path}:{line_no}: non-finite score {raw_score!r}"
        )
    return score


# ----------------------------------------------------------------------
# Scored TSV
# ----------------------------------------------------------------------
def save_tsv(graph: KnowledgeGraph, path: str | Path) -> int:
    """Write *graph* as scored TSV; returns the number of lines written.

    Columnar graphs take a vectorised path (no Triple objects built);
    the bytes written are identical either way.
    """
    count = 0
    with _open_text(path, "w") as handle:
        for line in _tsv_lines(graph):
            handle.write(line)
            count += 1
    return count


def _tsv_lines(graph: KnowledgeGraph) -> Iterator[str]:
    store = getattr(graph, "store", None)
    if store is not None:
        from repro.kg.columnar import ColumnarStore

        if isinstance(store, ColumnarStore):
            yield from store.tsv_lines()
            return
    for triple in sorted(graph.triples(), key=lambda t: t.spo):
        yield (
            f"{triple.subject}\t{triple.predicate}\t{triple.object}\t{triple.score:.10g}\n"
        )


def iter_tsv(path: str | Path) -> Iterator[Triple]:
    """Yield triples from a scored TSV file, validating as we go."""
    with _open_text(path, "r") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.rstrip("\n")
            if not line or line.startswith("#"):
                continue
            parts = line.split("\t")
            if len(parts) == 3:
                s, p, o = parts
                score = 1.0
            elif len(parts) == 4:
                s, p, o, raw_score = parts
                score = _parse_score(raw_score, path, line_no)
            else:
                raise KnowledgeGraphError(
                    f"{path}:{line_no}: expected 3 or 4 tab-separated fields, "
                    f"got {len(parts)}"
                )
            yield Triple(s, p, o, score)


def load_tsv(path: str | Path, name: str | None = None) -> KnowledgeGraph:
    """Load a scored TSV file into a fresh :class:`KnowledgeGraph`."""
    graph = KnowledgeGraph(name=name or Path(path).stem)
    graph.add_triples(iter_tsv(path))
    return graph


# ----------------------------------------------------------------------
# Mutation TSV (the live-update feed)
# ----------------------------------------------------------------------
def iter_update_tsv(path: str | Path) -> "Iterator[GraphUpdate]":
    """Yield graph updates from a mutation TSV, validating as we go.

    One mutation per line: ``+<TAB>s<TAB>p<TAB>o<TAB>score`` adds or
    overwrites a scored triple (the score field is optional, defaulting
    to 1.0), ``-<TAB>s<TAB>p<TAB>o`` removes one.  Blank lines and ``#``
    comments are skipped.  This is the on-disk feed of the ``update``
    CLI subcommand and of :meth:`repro.kg.delta.LiveGraph.apply_updates`.
    """
    from repro.kg.delta import GraphUpdate

    with _open_text(path, "r") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.rstrip("\n")
            if not line or line.startswith("#"):
                continue
            parts = line.split("\t")
            op = parts[0]
            if op == "+":
                if len(parts) == 4:
                    score = 1.0
                elif len(parts) == 5:
                    score = _parse_score(parts[4], path, line_no)
                else:
                    raise KnowledgeGraphError(
                        f"{path}:{line_no}: '+' update expects 4 or 5 "
                        f"tab-separated fields, got {len(parts)}"
                    )
                yield GraphUpdate.add(parts[1], parts[2], parts[3], score)
            elif op == "-":
                if len(parts) != 4:
                    raise KnowledgeGraphError(
                        f"{path}:{line_no}: '-' update expects 4 "
                        f"tab-separated fields, got {len(parts)}"
                    )
                yield GraphUpdate.remove(parts[1], parts[2], parts[3])
            else:
                raise KnowledgeGraphError(
                    f"{path}:{line_no}: update op must be '+' or '-', got {op!r}"
                )


# ----------------------------------------------------------------------
# Binary snapshots (columnar .npz)
# ----------------------------------------------------------------------
def save_snapshot(graph: KnowledgeGraph, path: str | Path) -> int:
    """Persist *graph* as a versioned binary snapshot; returns triple count.

    The snapshot is a compressed ``.npz`` holding the graph's
    dictionary-encoded columns plus a header (format magic, version,
    graph name) — see ``docs/storage.md`` for the exact layout.  Any
    graph can be saved; non-columnar graphs are interned on the fly.
    Loading with :func:`load_snapshot` skips parsing and interning
    entirely, which is the whole point of the format.
    """
    import numpy as np

    from repro.kg.columnar import ColumnarStore

    store = getattr(graph, "store", None)
    if not isinstance(store, ColumnarStore):
        store = ColumnarStore.from_triples(graph.triples())
    # Refuse to write a file load_snapshot would reject (e.g. a NaN score
    # smuggled past Triple's `score < 0` check): fail at save time.
    store.validate()
    path = Path(path)
    with open(path, "wb") as handle:
        np.savez_compressed(
            handle,
            format=np.array(SNAPSHOT_FORMAT),
            version=np.array(SNAPSHOT_VERSION, dtype=np.int64),
            name=np.array(graph.name),
            terms=store.terms,
            subjects=store.subjects,
            predicates=store.predicates,
            objects=store.objects,
            scores=store.scores,
        )
    return store.n_triples


def load_snapshot(
    path: str | Path,
    name: str | None = None,
    mutable: bool = False,
) -> KnowledgeGraph:
    """Load a binary snapshot written by :func:`save_snapshot`.

    Returns a read-only :class:`~repro.kg.columnar.ColumnarGraph` by
    default (columns are adopted as-is after validation — no per-triple
    work).  Pass ``mutable=True`` to decode into an ordinary object-backed
    :class:`KnowledgeGraph` instead.  A file that is not a snapshot, or a
    snapshot from a newer format version, raises
    :class:`~repro.errors.KnowledgeGraphError`.
    """
    import zipfile

    import numpy as np

    from repro.kg.columnar import ColumnarGraph, ColumnarStore

    path = Path(path)
    try:
        with np.load(path, allow_pickle=False) as data:
            try:
                magic = str(data["format"][()])
                version = int(data["version"][()])
                stored_name = str(data["name"][()])
                arrays = {
                    key: data[key]
                    for key in ("terms", "subjects", "predicates", "objects", "scores")
                }
            except KeyError as missing:
                raise KnowledgeGraphError(
                    f"{path}: not a knowledge-graph snapshot (missing {missing})"
                ) from None
    except (zipfile.BadZipFile, ValueError, OSError) as error:
        raise KnowledgeGraphError(f"{path}: cannot read snapshot: {error}") from None
    if magic != SNAPSHOT_FORMAT:
        raise KnowledgeGraphError(
            f"{path}: bad snapshot magic {magic!r} (expected {SNAPSHOT_FORMAT!r})"
        )
    if not 1 <= version <= SNAPSHOT_VERSION:
        raise KnowledgeGraphError(
            f"{path}: snapshot version {version} unsupported "
            f"(this reader handles 1..{SNAPSHOT_VERSION})"
        )
    try:
        store = ColumnarStore.from_arrays(
            arrays["terms"],
            arrays["subjects"],
            arrays["predicates"],
            arrays["objects"],
            arrays["scores"],
            validate=True,
        )
    except KnowledgeGraphError as error:
        raise KnowledgeGraphError(f"{path}: corrupt snapshot: {error}") from None
    graph = ColumnarGraph(store, name=name or stored_name or path.stem)
    return graph.thaw() if mutable else graph


# ----------------------------------------------------------------------
# N-triples-ish
# ----------------------------------------------------------------------
def _angle(term: str) -> str:
    return f"<{term}>"


def _unangle(token: str, where: str) -> str:
    if len(token) >= 2 and token[0] == "<" and token[-1] == ">":
        return token[1:-1]
    raise KnowledgeGraphError(f"{where}: expected <term>, got {token!r}")


def save_ntriples(graph: KnowledgeGraph, path: str | Path) -> int:
    """Write *graph* without scores in a simple N-triples-like syntax."""
    count = 0
    with _open_text(path, "w") as handle:
        for triple in sorted(graph.triples(), key=lambda t: t.spo):
            handle.write(
                f"{_angle(triple.subject)} {_angle(triple.predicate)} "
                f"{_angle(triple.object)} .\n"
            )
            count += 1
    return count


def iter_ntriples(path: str | Path) -> Iterator[Triple]:
    """Yield triples from an N-triples-ish file (scores default to 1.0)."""
    with _open_text(path, "r") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            if not line.endswith("."):
                raise KnowledgeGraphError(f"{path}:{line_no}: missing trailing '.'")
            tokens = line[:-1].split()
            if len(tokens) != 3:
                raise KnowledgeGraphError(
                    f"{path}:{line_no}: expected 3 terms, got {len(tokens)}"
                )
            where = f"{path}:{line_no}"
            yield Triple(
                _unangle(tokens[0], where),
                _unangle(tokens[1], where),
                _unangle(tokens[2], where),
                1.0,
            )


def load_ntriples(path: str | Path, name: str | None = None) -> KnowledgeGraph:
    """Load an N-triples-ish file into a fresh :class:`KnowledgeGraph`."""
    graph = KnowledgeGraph(name=name or Path(path).stem)
    graph.add_triples(iter_ntriples(path))
    return graph


# ----------------------------------------------------------------------
# Convenience
# ----------------------------------------------------------------------
def from_tuples(
    rows: Iterable[tuple[str, str, str] | tuple[str, str, str, float]],
    name: str = "kg",
) -> KnowledgeGraph:
    """Build a graph from plain tuples, a convenience for tests/examples."""
    graph = KnowledgeGraph(name=name)
    for row in rows:
        if len(row) == 3:
            graph.add(*row)  # type: ignore[misc]
        elif len(row) == 4:
            graph.add(row[0], row[1], row[2], score=float(row[3]))
        else:
            raise KnowledgeGraphError(f"expected 3- or 4-tuple, got {row!r}")
    return graph
