"""Columnar dictionary-encoded storage backend.

The default :class:`~repro.kg.graph.KnowledgeGraph` keeps every triple as
a Python object inside a dict — perfect for small graphs and mutation,
but Python-object overhead caps graph size and makes (re)loading a large
graph dominated by object churn.  This module is the production-scale
counterpart, the extensional-database layout classic OBDA systems use:

* one **term dictionary** mapping every distinct term (subject, predicate
  or object string) to a small integer id, and
* four parallel **columns** — subject ids, predicate ids, object ids and
  raw scores — as NumPy arrays.

:class:`ColumnarGraph` wraps the columns behind the exact
:class:`~repro.kg.graph.KnowledgeGraph` interface, so engines, statistics
catalogs, operators and the service-layer caches run on it unchanged.
Match lists (Definition 5) are built *vectorised*: candidate rows come
from boolean masks over the id columns and the score-descending order
from one ``numpy.lexsort`` — no per-triple Python comparisons.

The column layout is also the on-disk **snapshot** layout: see
:func:`repro.kg.storage.save_snapshot` / ``load_snapshot``, which persist
a store to a versioned ``.npz`` container and bring it back without
reparsing text or re-interning terms.  ``docs/storage.md`` specifies the
format.
"""

from __future__ import annotations

from typing import AbstractSet, Iterable, Iterator, Mapping

import numpy as np

from repro.errors import KnowledgeGraphError
from repro.kg.graph import KnowledgeGraph
from repro.kg.index import MatchList, PatternIndex, PatternKey
from repro.kg.pattern import TriplePattern, Variable
from repro.kg.triple import Triple

#: Dtype of the three id columns.  int32 caps the dictionary at ~2.1e9
#: distinct terms — far beyond what one process holds in RAM anyway —
#: and halves snapshot size versus int64.
ID_DTYPE = np.int32

#: Rows decoded per chunk when iterating triples (bounds peak memory).
_DECODE_CHUNK = 65536


def _as_id_column(values: object, name: str) -> np.ndarray:
    """Coerce *values* into a 1-D id column, rejecting junk early."""
    array = np.asarray(values)
    if array.ndim != 1:
        raise KnowledgeGraphError(f"{name} column must be 1-D, got shape {array.shape}")
    if array.dtype.kind not in "iu":
        raise KnowledgeGraphError(
            f"{name} column must be integer ids, got dtype {array.dtype}"
        )
    return array.astype(ID_DTYPE, copy=False)


class ColumnarStore:
    """Dictionary-encoded ``(s, p, o, score)`` columns over one term table.

    The store is an immutable value object: four parallel arrays plus the
    id → term dictionary, with lazily built lookup structures (term → id
    map, lexicographic term ranks, row index).  Build one with
    :meth:`from_triples` (interns as it streams) or :meth:`from_arrays`
    (validates pre-encoded columns, e.g. from a snapshot or a generator).

    Attributes
    ----------
    terms:
        1-D unicode array; index is the term id.
    subjects, predicates, objects:
        int32 id columns, one entry per triple.
    scores:
        float64 raw scores, one entry per triple.
    """

    __slots__ = (
        "terms",
        "subjects",
        "predicates",
        "objects",
        "scores",
        "source_path",
        "_term_list",
        "_term_ids",
        "_term_rank",
        "_row_index",
        "_packed_sorted",
        "_lexicon_parent",
    )

    def __init__(
        self,
        terms: np.ndarray,
        subjects: np.ndarray,
        predicates: np.ndarray,
        objects: np.ndarray,
        scores: np.ndarray,
    ) -> None:
        self.terms = np.asarray(terms)
        self.subjects = _as_id_column(subjects, "subject")
        self.predicates = _as_id_column(predicates, "predicate")
        self.objects = _as_id_column(objects, "object")
        self.scores = np.asarray(scores, dtype=np.float64)
        n = len(self.subjects)
        if not (len(self.predicates) == len(self.objects) == len(self.scores) == n):
            raise KnowledgeGraphError(
                "column length mismatch: "
                f"s={len(self.subjects)} p={len(self.predicates)} "
                f"o={len(self.objects)} scores={len(self.scores)}"
            )
        if self.terms.ndim != 1 or (self.terms.size and self.terms.dtype.kind != "U"):
            raise KnowledgeGraphError("terms must be a 1-D unicode array")
        self.source_path: str | None = None
        self._term_list: list[str] | None = None
        self._term_ids: dict[str, int] | None = None
        self._term_rank: np.ndarray | None = None
        self._row_index: dict[tuple[int, int, int], int] | None = None
        self._packed_sorted: np.ndarray | None = None
        self._lexicon_parent: "ColumnarStore | None" = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_triples(cls, triples: Iterable[Triple]) -> "ColumnarStore":
        """Intern a stream of :class:`Triple` into a fresh store.

        Duplicate ``(s, p, o)`` rows keep the *last* score seen, matching
        :meth:`KnowledgeGraph.add_triple` semantics, so converting a graph
        or a TSV stream is lossless.
        """
        term_ids: dict[str, int] = {}

        def intern(term: str) -> int:
            term_id = term_ids.get(term)
            if term_id is None:
                if "\x00" in term:
                    raise KnowledgeGraphError(
                        f"term {term!r} contains NUL, unsupported by columnar storage"
                    )
                term_id = len(term_ids)
                term_ids[term] = term_id
            return term_id

        rows: dict[tuple[int, int, int], float] = {}
        for triple in triples:
            if not isinstance(triple, Triple):
                raise KnowledgeGraphError(
                    f"expected Triple, got {type(triple).__name__}"
                )
            key = (intern(triple.subject), intern(triple.predicate), intern(triple.object))
            rows[key] = float(triple.score)

        terms = np.array(list(term_ids), dtype=str) if term_ids else np.empty(0, dtype="<U1")
        if rows:
            ids = np.fromiter(
                (component for key in rows for component in key),
                dtype=ID_DTYPE,
                count=3 * len(rows),
            ).reshape(-1, 3)
            subjects, predicates, objects = ids[:, 0], ids[:, 1], ids[:, 2]
            scores = np.fromiter(rows.values(), dtype=np.float64, count=len(rows))
        else:
            subjects = predicates = objects = np.empty(0, dtype=ID_DTYPE)
            scores = np.empty(0, dtype=np.float64)
        store = cls(terms, subjects, predicates, objects, scores)
        store._term_ids = term_ids  # already built; no need to rebuild lazily
        return store

    @classmethod
    def from_arrays(
        cls,
        terms: np.ndarray,
        subjects: np.ndarray,
        predicates: np.ndarray,
        objects: np.ndarray,
        scores: np.ndarray,
        *,
        validate: bool = True,
    ) -> "ColumnarStore":
        """Wrap pre-encoded columns, optionally validating the invariants.

        Validation (vectorised, cheap even at millions of rows) checks
        that ids are in range, scores are finite and non-negative, terms
        are non-empty / NUL-free / distinct, and ``(s, p, o)`` rows are
        unique.  Pass ``validate=False`` only for columns produced by
        trusted code in the same process.
        """
        store = cls(terms, subjects, predicates, objects, scores)
        if validate:
            store.validate()
        return store

    @classmethod
    def open_mmap(cls, path: "str | object", *, verify: bool = False) -> "ColumnarStore":
        """Attach a v2 packed snapshot (``.kg2``) as memory-mapped columns.

        O(ms) regardless of graph size: the columns (and the precomputed
        lexicographic term ranks) are ``np.memmap`` views over the file,
        so pages fault in on demand and every process attaching the same
        snapshot shares one physical copy through the page cache.  The
        returned store is read-only; mutating code must go through the
        delta overlay (:mod:`repro.kg.delta`) like any other frozen
        store.  ``verify=True`` additionally checks the per-section
        checksums and full invariants (reads the whole file).  Format
        spec: ``docs/storage.md``; written by
        :func:`repro.kg.storage.save_snapshot_v2`.
        """
        from repro.kg.storage import open_snapshot_v2_store

        return open_snapshot_v2_store(path, verify=verify)

    def validate(self) -> None:
        """Check every store invariant; raise :class:`KnowledgeGraphError`."""
        n_terms = self.n_terms
        for name, column in (
            ("subject", self.subjects),
            ("predicate", self.predicates),
            ("object", self.objects),
        ):
            if column.size and (column.min() < 0 or column.max() >= n_terms):
                raise KnowledgeGraphError(
                    f"{name} ids out of range [0, {n_terms}) "
                    f"(min={column.min()}, max={column.max()})"
                )
        if self.scores.size:
            if not np.isfinite(self.scores).all():
                raise KnowledgeGraphError("scores must be finite")
            if (self.scores < 0).any():
                raise KnowledgeGraphError("scores must be >= 0")
        if self.terms.size:
            decoded = self.term_list()
            if any(not term for term in decoded):
                raise KnowledgeGraphError("terms must be non-empty strings")
            if any("\x00" in term for term in decoded):
                raise KnowledgeGraphError("terms must not contain NUL")
            # sort + adjacent compare beats np.unique by an order of
            # magnitude here, and validation is on the snapshot-load path
            ordered_terms = np.sort(self.terms)
            if (ordered_terms[1:] == ordered_terms[:-1]).any():
                raise KnowledgeGraphError("terms must be distinct")
        if self.n_triples:
            ordered_rows = np.sort(self._packed_rows())
            if (ordered_rows[1:] == ordered_rows[:-1]).any():
                raise KnowledgeGraphError("(s, p, o) rows must be unique")

    def _packed_rows(self) -> np.ndarray:
        """Each row packed into one comparable value for uniqueness checks:
        a single int64 while ``n_terms**3`` fits (collision-free base-n
        encoding), a structured void view beyond that."""
        n = self.n_terms
        if n**3 < 2**63:
            return (
                self.subjects.astype(np.int64) * n + self.predicates
            ) * n + self.objects
        stacked = np.ascontiguousarray(
            np.stack([self.subjects, self.predicates, self.objects], axis=1)
        )
        return stacked.view([("", ID_DTYPE)] * 3).ravel()

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def n_triples(self) -> int:
        """Number of rows (distinct triples)."""
        return len(self.subjects)

    @property
    def n_terms(self) -> int:
        """Number of dictionary entries (distinct terms)."""
        return len(self.terms)

    def nbytes(self) -> int:
        """Approximate in-memory footprint of the arrays, in bytes."""
        return int(
            self.terms.nbytes
            + self.subjects.nbytes
            + self.predicates.nbytes
            + self.objects.nbytes
            + self.scores.nbytes
        )

    # ------------------------------------------------------------------
    # Lazy lookup structures
    # ------------------------------------------------------------------
    def share_lexicon_from(self, parent: "ColumnarStore") -> None:
        """Delegate dictionary lookups to *parent* (which must hold the
        *same* ``terms`` array, e.g. shard slices over one dictionary).

        Keeps laziness intact: nothing is built at call time, and when a
        shard later needs the term → id map or the ranks, all siblings
        resolve to the single structure built on the parent — one decode
        of the dictionary per process instead of one per shard.
        """
        if parent.terms is not self.terms:
            raise KnowledgeGraphError(
                "share_lexicon_from requires an identical terms array"
            )
        self._lexicon_parent = parent

    def term_list(self) -> list[str]:
        """The dictionary as plain Python strings (id → term), built lazily."""
        if self._term_list is None:
            if self._lexicon_parent is not None:
                self._term_list = self._lexicon_parent.term_list()
            else:
                self._term_list = self.terms.tolist()
        return self._term_list

    def term_id(self, term: str) -> int | None:
        """Id of *term*, or ``None`` if it is not in the dictionary."""
        if self._term_ids is None:
            if self._lexicon_parent is not None:
                self._lexicon_parent.term_id("")  # force the parent's map
                self._term_ids = self._lexicon_parent._term_ids
            else:
                self._term_ids = {t: i for i, t in enumerate(self.term_list())}
        return self._term_ids.get(term)

    def _ranks(self) -> np.ndarray:
        """Lexicographic rank of each term id (order-isomorphic to the
        term strings, so integer tie-breaks reproduce string tie-breaks).
        Memory-mapped stores carry the ranks as a snapshot section, so
        attaching never argsorts the dictionary."""
        if self._term_rank is None:
            if self._lexicon_parent is not None:
                self._term_rank = self._lexicon_parent._ranks()
            else:
                order = np.argsort(self.terms, kind="stable")
                rank = np.empty(len(order), dtype=np.int64)
                rank[order] = np.arange(len(order))
                self._term_rank = rank
        return self._term_rank

    def row_of(self, subject: str, predicate: str, object_: str) -> int | None:
        """Row index of a fully-bound triple, or ``None`` (lazy hash index)."""
        sid, pid, oid = (
            self.term_id(subject),
            self.term_id(predicate),
            self.term_id(object_),
        )
        if sid is None or pid is None or oid is None:
            return None
        if self._row_index is None:
            self._row_index = {
                row: index
                for index, row in enumerate(
                    zip(
                        self.subjects.tolist(),
                        self.predicates.tolist(),
                        self.objects.tolist(),
                    )
                )
            }
        return self._row_index.get((sid, pid, oid))

    def has_row(self, subject: str, predicate: str, object_: str) -> bool:
        """Whether a fully-bound triple is present — without a row index.

        Membership probes (the live-update write path checks every
        mutated key against the base) binary-search a lazily sorted
        packed-row array: one vectorised sort to build, ``O(log n)`` per
        probe, no 100k-entry Python dict.  Falls back to :meth:`row_of`
        for dictionaries too large to pack into int64.
        """
        sid, pid, oid = (
            self.term_id(subject),
            self.term_id(predicate),
            self.term_id(object_),
        )
        if sid is None or pid is None or oid is None:
            return False
        n = self.n_terms
        if n**3 >= 2**63:
            return self.row_of(subject, predicate, object_) is not None
        if self._packed_sorted is None:
            self._packed_sorted = np.sort(self._packed_rows())
        packed = (sid * n + pid) * n + oid
        index = int(np.searchsorted(self._packed_sorted, packed))
        return (
            index < len(self._packed_sorted)
            and int(self._packed_sorted[index]) == packed
        )

    # ------------------------------------------------------------------
    # Vectorised access
    # ------------------------------------------------------------------
    def rows_matching(self, key: PatternKey) -> np.ndarray:
        """Row indices agreeing with the bound positions of *key*.

        A term absent from the dictionary matches nothing; a fully
        unbound key matches every row.
        """
        mask: np.ndarray | None = None
        for term, column in zip(key, (self.subjects, self.predicates, self.objects)):
            if term is None:
                continue
            term_id = self.term_id(term)
            if term_id is None:
                return np.empty(0, dtype=np.int64)
            condition = column == ID_DTYPE(term_id)
            mask = condition if mask is None else (mask & condition)
        if mask is None:
            return np.arange(self.n_triples, dtype=np.int64)
        return np.nonzero(mask)[0]

    def _encode_keys(
        self, keys: Iterable[tuple[str, str, str]]
    ) -> list[tuple[int, int, int]]:
        """Resolve ``(s, p, o)`` string keys to id triples.

        A key with any term absent from the dictionary cannot name a row
        and is skipped.
        """
        encoded: list[tuple[int, int, int]] = []
        for s, p, o in keys:
            sid = self.term_id(s)
            if sid is None:
                continue
            pid = self.term_id(p)
            if pid is None:
                continue
            oid = self.term_id(o)
            if oid is None:
                continue
            encoded.append((sid, pid, oid))
        return encoded

    def pack_keys(
        self, keys: Iterable[tuple[str, str, str]]
    ) -> np.ndarray | None:
        """Packed int64 encodings of the *keys* this dictionary resolves.

        Keys with any unknown term are skipped (they cannot name a row).
        Returns ``None`` when the dictionary is too large to pack into
        int64 — callers must fall back to :meth:`exclude_keys` without a
        precomputed array.  Lets a caller encode a key set once and mask
        many row sets (e.g. one superseded-key set against every shard
        sharing this term dictionary).
        """
        n = self.n_terms
        if n**3 >= 2**63:
            return None
        encoded = self._encode_keys(keys)
        return np.fromiter(
            ((s * n + p) * n + o for s, p, o in encoded),
            dtype=np.int64,
            count=len(encoded),
        )

    def exclude_keys(
        self,
        rows: np.ndarray,
        keys: AbstractSet[tuple[str, str, str]],
        packed_keys: np.ndarray | None = None,
    ) -> np.ndarray:
        """*rows* with every row naming a key in *keys* dropped.

        The tombstone mask of the live-update overlay
        (:mod:`repro.kg.delta`): vectorised via the same packed-row
        encoding the uniqueness check uses, so masking a match list's
        candidate rows costs one ``isin`` — no decoding.  Pass
        *packed_keys* (from :meth:`pack_keys` against a store sharing
        this term dictionary) to skip re-encoding *keys* per call.
        """
        if len(rows) == 0 or not keys:
            return rows
        n = self.n_terms
        if packed_keys is None and n**3 < 2**63:
            packed_keys = self.pack_keys(keys)
        if packed_keys is not None:
            if len(packed_keys) == 0:
                return rows
            packed = (
                self.subjects[rows].astype(np.int64) * n + self.predicates[rows]
            ) * n + self.objects[rows]
            return rows[~np.isin(packed, packed_keys)]
        encoded = self._encode_keys(keys)
        if not encoded:
            return rows
        drop = set(encoded)
        keep = [
            row
            for row, ids in zip(
                rows.tolist(),
                zip(
                    self.subjects[rows].tolist(),
                    self.predicates[rows].tolist(),
                    self.objects[rows].tolist(),
                ),
            )
            if ids not in drop
        ]
        return np.asarray(keep, dtype=np.int64)

    def with_updates(
        self,
        adds: Mapping[tuple[str, str, str], float],
        drops: AbstractSet[tuple[str, str, str]] = frozenset(),
    ) -> "ColumnarStore":
        """A fresh store with *drops* rows removed and *adds* appended.

        The compaction step of the live-update overlay: base rows named
        by an add key are dropped too (the add's score wins), mirroring
        :meth:`KnowledgeGraph.add_triple` overwrite semantics, so the
        result holds exactly the overlay's merged triple set.  The base
        side is vectorised (one key-exclusion mask, column slices);
        only the (small) delta is interned in Python.  New terms extend
        the dictionary in first-seen order, keeping the store snapshot-
        compatible.
        """
        if not adds and not drops:
            return self
        drop_keys = set(drops) | set(adds)
        keep_rows = self.exclude_keys(
            np.arange(self.n_triples, dtype=np.int64), drop_keys
        )
        term_ids = (
            dict(self._term_ids)
            if self._term_ids is not None
            else {term: i for i, term in enumerate(self.term_list())}
        )
        new_terms: list[str] = []

        def intern(term: str) -> int:
            term_id = term_ids.get(term)
            if term_id is None:
                if "\x00" in term:
                    raise KnowledgeGraphError(
                        f"term {term!r} contains NUL, unsupported by columnar storage"
                    )
                term_id = len(term_ids)
                term_ids[term] = term_id
                new_terms.append(term)
            return term_id

        if adds:
            ids = np.fromiter(
                (intern(term) for key in adds for term in key),
                dtype=np.int64,
                count=3 * len(adds),
            ).reshape(-1, 3)
            add_columns = (ids[:, 0], ids[:, 1], ids[:, 2])
            add_scores = np.fromiter(adds.values(), dtype=np.float64, count=len(adds))
        else:
            add_columns = (np.empty(0, dtype=np.int64),) * 3
            add_scores = np.empty(0, dtype=np.float64)

        terms = self.terms
        if new_terms:
            appended = np.array(new_terms, dtype=str)
            terms = np.concatenate([terms, appended]) if terms.size else appended
        columns = [
            np.concatenate([column[keep_rows], extra.astype(ID_DTYPE)])
            for column, extra in zip(
                (self.subjects, self.predicates, self.objects), add_columns
            )
        ]
        scores = np.concatenate([self.scores[keep_rows], add_scores])
        store = ColumnarStore(terms, *columns, scores)
        store._term_ids = term_ids
        return store

    def score_order(self, rows: np.ndarray) -> np.ndarray:
        """*rows* reordered by raw score descending, ties by ``(s, p, o)``.

        Exactly the Definition-5 order the Python backend produces with
        ``sorted(key=lambda t: (-t.score, t.spo))``.
        """
        if len(rows) == 0:
            return rows
        ranks = self._ranks()
        order = np.lexsort(
            (
                ranks[self.objects[rows]],
                ranks[self.predicates[rows]],
                ranks[self.subjects[rows]],
                -self.scores[rows],
            )
        )
        return rows[order]

    def spo_order(self) -> np.ndarray:
        """All rows in lexicographic ``(s, p, o)`` order (the TSV order)."""
        ranks = self._ranks()
        return np.lexsort(
            (ranks[self.objects], ranks[self.predicates], ranks[self.subjects])
        )

    def decode_rows(self, rows: np.ndarray) -> list[Triple]:
        """Materialise :class:`Triple` objects for *rows*, in order."""
        terms = self.term_list()
        return [
            Triple(terms[s], terms[p], terms[o], score)
            for s, p, o, score in zip(
                self.subjects[rows].tolist(),
                self.predicates[rows].tolist(),
                self.objects[rows].tolist(),
                self.scores[rows].tolist(),
            )
        ]

    def iter_triples(self) -> Iterator[Triple]:
        """Stream every triple, decoding in chunks to bound peak memory."""
        terms = self.term_list()
        for start in range(0, self.n_triples, _DECODE_CHUNK):
            stop = min(start + _DECODE_CHUNK, self.n_triples)
            yield from (
                Triple(terms[s], terms[p], terms[o], score)
                for s, p, o, score in zip(
                    self.subjects[start:stop].tolist(),
                    self.predicates[start:stop].tolist(),
                    self.objects[start:stop].tolist(),
                    self.scores[start:stop].tolist(),
                )
            )

    def tsv_lines(self) -> Iterator[str]:
        """Scored-TSV lines in ``(s, p, o)`` order, no Triple objects.

        The vectorised twin of :func:`repro.kg.storage.save_tsv`'s
        object path; byte-identical output for the same graph.
        """
        terms = self.term_list()
        order = self.spo_order()
        for s, p, o, score in zip(
            self.subjects[order].tolist(),
            self.predicates[order].tolist(),
            self.objects[order].tolist(),
            self.scores[order].tolist(),
        ):
            yield f"{terms[s]}\t{terms[p]}\t{terms[o]}\t{score:.10g}\n"

    def unique_terms(self, *columns: np.ndarray) -> set[str]:
        """Distinct decoded terms appearing in the given id columns."""
        if not columns:
            return set()
        ids = np.unique(np.concatenate(columns)) if len(columns) > 1 else np.unique(columns[0])
        terms = self.term_list()
        return {terms[i] for i in ids.tolist()}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ColumnarStore(n_triples={self.n_triples}, n_terms={self.n_terms}, "
            f"~{self.nbytes() / 1e6:.1f} MB)"
        )


class ColumnarPatternIndex(PatternIndex):
    """A :class:`PatternIndex` that answers from columns, not hash maps.

    Candidate retrieval is a boolean mask over the id columns and match
    lists are ordered by one ``lexsort`` over (score, term-rank) keys —
    :meth:`PatternIndex.match_list`'s caching (internal dict or the
    attached external :class:`~repro.service.MatchListCache`) is
    inherited untouched, so the service layer cannot tell the backends
    apart.
    """

    def candidates(self, key: PatternKey) -> list[Triple]:
        """Triples agreeing with the bound positions of *key* (unsorted)."""
        self._invalidate_if_stale()
        store = self._store()
        return store.decode_rows(store.rows_matching(key))

    def peek(self, pattern: TriplePattern) -> tuple[int, float]:
        """``(n_matches, max raw score)`` for *pattern* — columns only.

        The cheap prefix of :meth:`match_list`: one boolean mask and one
        ``max``, no decoding and no sorting.  Sharded execution uses it
        to bound a shard's contribution before (possibly instead of)
        building the shard's match list.
        """
        self._invalidate_if_stale()
        store = self._store()
        rows = store.rows_matching(pattern.key())
        rows = self._filter_repeated_variables(pattern, rows, store)
        if len(rows) == 0:
            return 0, 0.0
        return len(rows), float(store.scores[rows].max())

    def _store(self) -> ColumnarStore:
        return self._graph.store  # type: ignore[attr-defined]

    def _build_match_list(self, pattern: TriplePattern, key: PatternKey) -> MatchList:
        store = self._store()
        rows = store.rows_matching(key)
        rows = self._filter_repeated_variables(pattern, rows, store)
        rows = store.score_order(rows)
        triples = tuple(store.decode_rows(rows))
        if not triples:
            return MatchList(key, (), 0.0, ())
        scores = store.scores[rows]
        max_score = float(scores[0])
        if max_score > 0:
            normalized = tuple((scores / max_score).tolist())
        else:
            normalized = tuple(0.0 for _ in triples)
        return MatchList(key, triples, max_score, normalized)

    @staticmethod
    def _filter_repeated_variables(
        pattern: TriplePattern, rows: np.ndarray, store: ColumnarStore
    ) -> np.ndarray:
        """Keep only rows where repeated variables bind consistently
        (e.g. ``(?x, p, ?x)`` keeps the diagonal), vectorised."""
        positions_by_name: dict[str, list[int]] = {}
        for position, term in enumerate(pattern.terms):
            if isinstance(term, Variable):
                positions_by_name.setdefault(term.name, []).append(position)
        columns = (store.subjects, store.predicates, store.objects)
        for positions in positions_by_name.values():
            first = positions[0]
            for other in positions[1:]:
                rows = rows[columns[first][rows] == columns[other][rows]]
        return rows

    def stats(self) -> dict[str, int]:
        """Diagnostics; columnar indexes keep no shape hash maps."""
        base = super().stats()
        base["columnar"] = 1
        return base


class ColumnarGraph(KnowledgeGraph):
    """A read-only :class:`KnowledgeGraph` backed by a :class:`ColumnarStore`.

    Same public interface — pattern matching, Definition-5 match lists,
    external cache hooks, statistics — but triples live in dictionary-
    encoded NumPy columns instead of a Python dict, so million-triple
    graphs load in well under a second from a snapshot and match lists
    sort without per-triple Python comparisons.

    The graph is immutable: :meth:`add_triple`, :meth:`add_triples` and
    :meth:`remove` raise.  Call :meth:`thaw` for a mutable object-backed
    copy, or rebuild via :meth:`from_graph` after editing.

    >>> from repro.kg import ColumnarGraph, KnowledgeGraph
    >>> kg = KnowledgeGraph()
    >>> kg.add("shakira", "rdf:type", "singer", score=120.0)
    >>> frozen = ColumnarGraph.from_graph(kg)
    >>> frozen.size
    1
    """

    def __init__(self, store: ColumnarStore, name: str = "kg") -> None:
        self.name = name
        self._store = store
        self._version = 0
        self._index = ColumnarPatternIndex(self)

    # ------------------------------------------------------------------
    # Construction / conversion
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, graph: KnowledgeGraph, name: str | None = None) -> "ColumnarGraph":
        """Freeze any :class:`KnowledgeGraph` into columnar form."""
        if isinstance(graph, ColumnarGraph):
            return cls(graph.store, name=name or graph.name)
        return cls(ColumnarStore.from_triples(graph.triples()), name=name or graph.name)

    @classmethod
    def from_triples(cls, triples: Iterable[Triple], name: str = "kg") -> "ColumnarGraph":
        """Intern a triple stream straight into a columnar graph."""
        return cls(ColumnarStore.from_triples(triples), name=name)

    def thaw(self) -> KnowledgeGraph:
        """A mutable object-backed copy with the same triples and name."""
        return KnowledgeGraph(self.triples(), name=self.name)

    @property
    def store(self) -> ColumnarStore:
        """The underlying dictionary-encoded columns."""
        return self._store

    def peek_match(self, pattern: TriplePattern) -> tuple[int, float]:
        """``(n_matches, max raw score)`` without building the match list."""
        return self._index.peek(pattern)

    # ------------------------------------------------------------------
    # Mutation: refused (freeze-thaw model)
    # ------------------------------------------------------------------
    def add_triple(self, triple: Triple) -> None:
        """Unsupported; columnar graphs are immutable.  Use :meth:`thaw`."""
        raise KnowledgeGraphError(
            "ColumnarGraph is immutable; thaw() to a mutable KnowledgeGraph "
            "or rebuild with ColumnarGraph.from_graph / from_triples"
        )

    def add_triples(self, triples: Iterable[Triple]) -> int:
        """Unsupported; columnar graphs are immutable.  Use :meth:`thaw`."""
        raise KnowledgeGraphError(
            "ColumnarGraph is immutable; thaw() to a mutable KnowledgeGraph "
            "or rebuild with ColumnarGraph.from_graph / from_triples"
        )

    def remove(self, subject: str, predicate: str, obj: str) -> bool:
        """Unsupported; columnar graphs are immutable.  Use :meth:`thaw`."""
        raise KnowledgeGraphError(
            "ColumnarGraph is immutable; thaw() to a mutable KnowledgeGraph first"
        )

    # ------------------------------------------------------------------
    # Introspection (columnar implementations of the base interface)
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of distinct triples."""
        return self._store.n_triples

    def __contains__(self, item: object) -> bool:
        if isinstance(item, Triple):
            item = item.spo
        if isinstance(item, tuple) and len(item) == 3:
            return self._store.has_row(*item)
        return False

    def triples(self) -> Iterator[Triple]:
        """Iterate over all triples (row order; stable)."""
        return self._store.iter_triples()

    def score_of(self, subject: str, predicate: str, obj: str) -> float:
        """Raw score of a triple; raises if absent."""
        row = self._store.row_of(subject, predicate, obj)
        if row is None:
            raise KnowledgeGraphError(
                f"triple ({subject!r}, {predicate!r}, {obj!r}) not in graph"
            )
        return float(self._store.scores[row])

    def entities(self) -> set[str]:
        """All subjects and objects."""
        return self._store.unique_terms(self._store.subjects, self._store.objects)

    def predicates(self) -> set[str]:
        """All predicates."""
        return self._store.unique_terms(self._store.predicates)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ColumnarGraph(name={self.name!r}, size={self.size})"
