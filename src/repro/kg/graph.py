"""The in-memory scored triple store (Definition 1).

:class:`KnowledgeGraph` stores triples, exposes pattern matching, and owns
a :class:`~repro.kg.index.PatternIndex` that serves score-sorted match
lists — the substrate interface the paper obtained from PostgreSQL with an
``ORDER BY score DESC``.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import KnowledgeGraphError
from repro.kg.index import MatchList, MatchListCacheHook, PatternIndex
from repro.kg.pattern import TriplePattern
from repro.kg.triple import Triple


class KnowledgeGraph:
    """A set of scored triples with pattern-match indexes.

    Adding an existing triple replaces its score; triples can also be
    removed.  Indexes are built lazily and invalidated on mutation (via
    the :attr:`version` counter), so bulk loading stays linear.

    >>> kg = KnowledgeGraph()
    >>> kg.add("shakira", "rdf:type", "singer", score=120.0)
    >>> kg.size
    1
    """

    def __init__(self, triples: Iterable[Triple] | None = None, name: str = "kg") -> None:
        self.name = name
        self._scores: dict[tuple[str, str, str], float] = {}
        self._index = PatternIndex(self)
        self._version = 0
        if triples is not None:
            self.add_triples(triples)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, subject: str, predicate: str, obj: str, score: float = 1.0) -> None:
        """Add one triple (or update its score if already present)."""
        self.add_triple(Triple(subject, predicate, obj, score))

    def add_triple(self, triple: Triple) -> None:
        self._scores[triple.spo] = float(triple.score)
        self._version += 1

    def add_triples(self, triples: Iterable[Triple]) -> int:
        """Bulk-add; returns the number of triples processed."""
        count = 0
        for triple in triples:
            if not isinstance(triple, Triple):
                raise KnowledgeGraphError(f"expected Triple, got {type(triple).__name__}")
            self._scores[triple.spo] = float(triple.score)
            count += 1
        if count:
            self._version += 1
        return count

    def remove(self, subject: str, predicate: str, obj: str) -> bool:
        """Remove a triple; returns True if it was present."""
        removed = self._scores.pop((subject, predicate, obj), None) is not None
        if removed:
            self._version += 1
        return removed

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of distinct triples."""
        return len(self._scores)

    @property
    def version(self) -> int:
        """Monotonic mutation counter; used by caches to detect staleness."""
        return self._version

    def __len__(self) -> int:
        return self.size

    def __contains__(self, item: object) -> bool:
        if isinstance(item, Triple):
            return item.spo in self._scores
        if isinstance(item, tuple) and len(item) == 3:
            return item in self._scores
        return False

    def __iter__(self) -> Iterator[Triple]:
        return self.triples()

    def triples(self) -> Iterator[Triple]:
        """Iterate over all triples (arbitrary but stable order)."""
        for (s, p, o), score in self._scores.items():
            yield Triple(s, p, o, score)

    def score_of(self, subject: str, predicate: str, obj: str) -> float:
        """Raw score of a triple; raises if absent."""
        try:
            return self._scores[(subject, predicate, obj)]
        except KeyError:
            raise KnowledgeGraphError(
                f"triple ({subject!r}, {predicate!r}, {obj!r}) not in graph"
            ) from None

    def entities(self) -> set[str]:
        """All subjects and objects."""
        result: set[str] = set()
        for s, _, o in self._scores:
            result.add(s)
            result.add(o)
        return result

    def predicates(self) -> set[str]:
        return {p for _, p, _ in self._scores}

    # ------------------------------------------------------------------
    # Pattern matching
    # ------------------------------------------------------------------
    def match(self, pattern: TriplePattern) -> Iterator[Triple]:
        """All triples matching *pattern* (unsorted).

        Uses the index for constant-position lookup, then filters for
        repeated-variable consistency.
        """
        for triple in self._index.candidates(pattern.key()):
            if pattern.matches(triple):
                yield triple

    def count(self, pattern: TriplePattern) -> int:
        """Number of matches of *pattern* (``m_i`` in the paper)."""
        return sum(1 for _ in self.match(pattern))

    def match_list(self, pattern: TriplePattern) -> MatchList:
        """The score-sorted, score-normalised match list of *pattern*.

        This is the sorted input stream the paper's operators read
        (Definition 5: matches normalised by the list's maximum raw score,
        sorted descending).  Cached per pattern key.
        """
        return self._index.match_list(pattern)

    def peek_match_list(self, pattern: TriplePattern) -> MatchList | None:
        """The already-cached match list of *pattern*, or ``None``.

        Never triggers construction — the fast path sharded leaf scans
        probe before deciding whether lazy per-shard streaming is worth
        the merge overhead.
        """
        return self._index.peek_match_list(pattern)

    # ------------------------------------------------------------------
    # Cache management
    # ------------------------------------------------------------------
    def attach_match_list_cache(self, cache: MatchListCacheHook) -> None:
        """Route match-list lookups through an external (shared) cache.

        Used by :class:`repro.service.WorkloadRunner` to share one bounded
        LRU across every query of a batch; see
        :meth:`repro.kg.index.PatternIndex.attach_match_list_cache`.
        """
        self._index.attach_match_list_cache(cache)

    def detach_match_list_cache(self) -> None:
        self._index.detach_match_list_cache()

    @property
    def match_list_cache(self) -> MatchListCacheHook | None:
        """The attached external match-list cache, if any."""
        return self._index.match_list_cache

    def invalidate_caches(self) -> None:
        """Drop all lazily built indexes and match lists.

        Mutations invalidate automatically (via :attr:`version`); this is
        the explicit cold-start path used for cold-cache measurements.
        """
        self._index.invalidate()

    def index_stats(self) -> dict[str, int]:
        """Diagnostics from the underlying pattern index."""
        return self._index.stats()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"KnowledgeGraph(name={self.name!r}, size={self.size})"
