"""Pattern indexes and score-sorted match lists.

The operators in :mod:`repro.operators` consume one thing from the
substrate: for each triple pattern, a list of its matching triples sorted
by *normalised* score in descending order (Definition 5).  The paper got
this from PostgreSQL; here a :class:`PatternIndex` provides it from memory.

Index structure
---------------
For candidate retrieval we keep hash indexes on each non-empty subset of
bound positions that actually occurs in queries: S, P, O, SP, SO, PO, SPO.
They are built lazily the first time a key shape is used and rebuilt when
the graph mutates (detected via the graph's version counter).

Match lists
-----------
A :class:`MatchList` is an immutable snapshot: the pattern's matches sorted
by raw score descending (ties broken by the triple's terms for
determinism), the list's maximum raw score, and the normalised scores.  It
also precomputes the summary statistics the two-bucket histograms need.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Protocol, Sequence

from repro.errors import KnowledgeGraphError
from repro.kg.pattern import TriplePattern
from repro.kg.triple import Triple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kg.graph import KnowledgeGraph

#: Which positions are bound: a 3-bit mask over (S, P, O).
KeyShape = tuple[bool, bool, bool]

#: A concrete pattern key: ``(s, p, o)`` with ``None`` at variable positions.
PatternKey = tuple[str | None, str | None, str | None]


class MatchListCacheHook(Protocol):
    """What :class:`PatternIndex` needs from an external match-list cache.

    The index passes the graph version with every call so the cache can
    drop entries built against an older graph without the index having to
    orchestrate invalidation.  :class:`repro.service.MatchListCache` is the
    canonical implementation (bounded LRU with hit/miss statistics); any
    object with these two methods works.
    """

    def get(self, key: PatternKey, version: int) -> "MatchList | None": ...

    def put(self, key: PatternKey, version: int, match_list: "MatchList") -> None: ...


@dataclass(frozen=True)
class MatchList:
    """An immutable score-sorted match list for one triple-pattern key.

    Attributes
    ----------
    pattern_key:
        The ``(s, p, o)`` key with ``None`` for variable positions.
    triples:
        Matches sorted by raw score descending (stable tie-break on terms).
    max_score:
        The maximum *raw* score in the list (the Definition-5 normaliser);
        0.0 for an empty list.
    normalized_scores:
        ``S(t|q) = S(t) / max_score`` per triple, in list order.
    """

    pattern_key: tuple[str | None, str | None, str | None]
    triples: tuple[Triple, ...]
    max_score: float
    normalized_scores: tuple[float, ...]

    @classmethod
    def from_triples(
        cls,
        pattern_key: tuple[str | None, str | None, str | None],
        triples: Iterable[Triple],
    ) -> "MatchList":
        ordered = sorted(triples, key=lambda t: (-t.score, t.spo))
        max_score = ordered[0].score if ordered else 0.0
        if max_score > 0:
            normalized = tuple(t.score / max_score for t in ordered)
        else:
            normalized = tuple(0.0 for _ in ordered)
        return cls(pattern_key, tuple(ordered), max_score, normalized)

    def __len__(self) -> int:
        return len(self.triples)

    def __bool__(self) -> bool:
        return bool(self.triples)

    @property
    def is_empty(self) -> bool:
        return not self.triples

    def normalized(self, rank: int) -> float:
        """Normalised score at 0-based *rank* (rank 0 is the best match)."""
        return self.normalized_scores[rank]

    def total_normalized_score(self) -> float:
        """``S^i_{m_i}``: sum of normalised scores over the whole list."""
        return float(sum(self.normalized_scores))

    def cumulative_normalized_scores(self) -> list[float]:
        """Prefix sums of normalised scores (``S^i_r`` for every rank r)."""
        sums: list[float] = []
        running = 0.0
        for value in self.normalized_scores:
            running += value
            sums.append(running)
        return sums


def definition5_key(triple: Triple) -> tuple[float, tuple[str, str, str]]:
    """The global match-list sort key (raw score desc, terms asc)."""
    return (-triple.score, triple.spo)


def merge_match_lists(key: PatternKey, parts: Sequence[MatchList]) -> MatchList:
    """K-way merge sorted match-list parts into the global Definition-5 list.

    Each part must be sorted by ``(-raw score, spo)`` — which every
    backend in this package guarantees — and the parts must cover
    disjoint triple sets (shard slices of one partition, or a filtered
    base list plus a delta overlay).  The merged list is then bit-for-bit
    the list an unpartitioned backend builds: same triple order (the sort
    key is a total order because ``spo`` is unique) and the same
    normaliser (the global maximum raw score).
    """
    nonempty = [part for part in parts if part.triples]
    if not nonempty:
        return MatchList(key, (), 0.0, ())
    if len(nonempty) == 1:
        part = nonempty[0]
        return MatchList(key, part.triples, part.max_score, part.normalized_scores)
    merged = tuple(
        heapq.merge(*(part.triples for part in nonempty), key=definition5_key)
    )
    max_score = merged[0].score
    if max_score > 0:
        normalized = tuple(triple.score / max_score for triple in merged)
    else:
        normalized = tuple(0.0 for _ in merged)
    return MatchList(key, merged, max_score, normalized)


class PatternIndex:
    """Lazy hash indexes over a :class:`~repro.kg.graph.KnowledgeGraph`.

    One index per key *shape* (which of S/P/O are bound).  Each index maps
    the bound-term tuple to the list of matching triples.  Match lists are
    additionally cached per concrete pattern key.
    """

    def __init__(self, graph: "KnowledgeGraph") -> None:
        self._graph = graph
        self._built_version = -1
        self._shape_indexes: dict[KeyShape, dict[tuple[str, ...], list[Triple]]] = {}
        self._match_lists: dict[PatternKey, MatchList] = {}
        self._external_cache: MatchListCacheHook | None = None

    # ------------------------------------------------------------------
    # Cache hooks
    # ------------------------------------------------------------------
    def attach_match_list_cache(self, cache: MatchListCacheHook) -> None:
        """Serve match lists through *cache* instead of the internal dict.

        The attached cache sees every lookup together with the current
        graph version, so a bounded, shared, statistics-reporting cache
        (e.g. one shared by a whole workload runner) can replace the
        unbounded per-index dict.  Attaching drops the internal match-list
        cache so hit/miss accounting in *cache* is exact.

        Entries are version-tagged but carry no graph identity, so a cache
        instance must serve exactly one graph: if *cache* exposes a
        ``bind`` method it is called with the graph and may refuse a
        second graph (``MatchListCache`` does).
        """
        bind = getattr(cache, "bind", None)
        if callable(bind):
            bind(self._graph)
        self._external_cache = cache
        self._match_lists.clear()

    def detach_match_list_cache(self) -> None:
        """Go back to the internal unbounded match-list dict."""
        self._external_cache = None

    @property
    def match_list_cache(self) -> MatchListCacheHook | None:
        return self._external_cache

    def invalidate(self) -> None:
        """Drop every shape index and cached match list unconditionally.

        Mutation is detected automatically via the graph's version counter;
        this explicit path exists for callers that want cold-cache
        measurements or to bound memory without mutating the graph.  An
        attached external cache is emptied too (via its ``clear`` method,
        if it has one) — version tags alone would let its entries survive,
        since the graph version does not change here.
        """
        self._shape_indexes.clear()
        self._match_lists.clear()
        self._built_version = -1
        if self._external_cache is not None:
            clear = getattr(self._external_cache, "clear", None)
            if callable(clear):
                clear()

    # ------------------------------------------------------------------
    def _invalidate_if_stale(self) -> None:
        if self._built_version != self._graph.version:
            self._shape_indexes.clear()
            self._match_lists.clear()
            self._built_version = self._graph.version

    @staticmethod
    def _shape_of(key: Sequence[str | None]) -> KeyShape:
        return tuple(term is not None for term in key)  # type: ignore[return-value]

    def _index_for_shape(self, shape: KeyShape) -> dict[tuple[str, ...], list[Triple]]:
        index = self._shape_indexes.get(shape)
        if index is None:
            index = {}
            for triple in self._graph.triples():
                bound = tuple(
                    term
                    for term, is_bound in zip(triple.spo, shape)
                    if is_bound
                )
                index.setdefault(bound, []).append(triple)
            self._shape_indexes[shape] = index
        return index

    # ------------------------------------------------------------------
    def candidates(
        self, key: tuple[str | None, str | None, str | None]
    ) -> list[Triple]:
        """Triples agreeing with the bound positions of *key*.

        A fully-unbound key returns every triple (a full scan, as in any
        store); a fully-bound key returns zero or one triple.
        """
        self._invalidate_if_stale()
        shape = self._shape_of(key)
        if not any(shape):
            return list(self._graph.triples())
        index = self._index_for_shape(shape)
        bound = tuple(term for term in key if term is not None)
        return index.get(bound, [])

    def match_list(self, pattern: TriplePattern) -> MatchList:
        """Score-sorted match list for *pattern*, cached by key.

        With an attached external cache the lookup goes through it
        (version-tagged, so stale entries miss); otherwise the internal
        per-index dict serves repeats until the graph mutates.
        """
        self._invalidate_if_stale()
        key = pattern.key()
        if self._external_cache is not None:
            cached = self._external_cache.get(key, self._built_version)
            if cached is None:
                cached = self._build_match_list(pattern, key)
                self._external_cache.put(key, self._built_version, cached)
            return cached
        cached = self._match_lists.get(key)
        if cached is None:
            cached = self._build_match_list(pattern, key)
            self._match_lists[key] = cached
        return cached

    def peek_match_list(self, pattern: TriplePattern) -> MatchList | None:
        """The cached match list for *pattern*, or ``None`` — never builds.

        Lets callers (the sharded leaf builder) take a cached-list fast
        path without forcing construction on a miss.  With an external
        cache, membership is probed first (when the hook supports it) so
        a peek does not register as a statistical miss.
        """
        self._invalidate_if_stale()
        key = pattern.key()
        cache = self._external_cache
        if cache is not None:
            contains = getattr(type(cache), "__contains__", None)
            if contains is not None and key not in cache:  # type: ignore[operator]
                return None
            return cache.get(key, self._built_version)
        return self._match_lists.get(key)

    def _build_match_list(self, pattern: TriplePattern, key: PatternKey) -> MatchList:
        if len(set(pattern.variable_names)) != len(
            [t for t in pattern.terms if not isinstance(t, str)]
        ):
            # Repeated variables: fall back to full predicate matching
            # so that e.g. (?x, p, ?x) only keeps diagonal triples.
            matches = [t for t in self.candidates(key) if pattern.matches(t)]
        else:
            matches = self.candidates(key)
        return MatchList.from_triples(key, matches)

    def stats(self) -> dict[str, int]:
        """Diagnostics: how many shape indexes / match lists are cached."""
        return {
            "shape_indexes": len(self._shape_indexes),
            "match_lists": len(self._match_lists),
            "version": self._built_version,
        }
