"""Scored knowledge-graph substrate.

This package plays the role the PostgreSQL backend played in the paper:
it stores ``(subject, predicate, object)`` triples, each with a non-negative
score, and can return the matches of any triple pattern *sorted by
normalised score in descending order* — the only interface the top-k
operators need.

Public surface:

* :class:`~repro.kg.triple.Triple` — an immutable scored triple.
* :class:`~repro.kg.pattern.TriplePattern` / :class:`~repro.kg.pattern.Variable`
  — SPARQL-style triple patterns.
* :class:`~repro.kg.graph.KnowledgeGraph` — the object-backed store.
* :class:`~repro.kg.columnar.ColumnarGraph` /
  :class:`~repro.kg.columnar.ColumnarStore` — the read-only
  dictionary-encoded columnar backend (NumPy-backed; imported lazily so
  the object backend stays dependency-free).
* :class:`~repro.kg.delta.LiveGraph` / :class:`~repro.kg.delta.GraphUpdate`
  — the delta-overlay write path over the immutable backends (adds +
  tombstones, versioned invalidation, LSM-style compaction).
* :mod:`~repro.kg.storage` — scored-TSV / N-triples text formats, the
  mutation TSV (``iter_update_tsv``) and the binary ``.npz`` snapshot
  format (``save_snapshot`` / ``load_snapshot``).
"""

from repro.kg.delta import GraphUpdate, LiveGraph
from repro.kg.graph import KnowledgeGraph
from repro.kg.pattern import TriplePattern, Variable, is_variable
from repro.kg.triple import Triple
from repro.kg.namespace import Namespace, RDF_TYPE

#: Names served lazily from repro.kg.columnar (keeps NumPy optional for
#: the object backend).
_COLUMNAR_EXPORTS = ("ColumnarGraph", "ColumnarStore", "ColumnarPatternIndex")

#: Names served lazily from repro.kg.sharding (NumPy-backed as well).
_SHARDING_EXPORTS = ("ShardedGraph", "ShardedPatternIndex")

__all__ = [
    "ColumnarGraph",
    "ColumnarPatternIndex",
    "ColumnarStore",
    "GraphUpdate",
    "KnowledgeGraph",
    "LiveGraph",
    "Namespace",
    "RDF_TYPE",
    "ShardedGraph",
    "ShardedPatternIndex",
    "Triple",
    "TriplePattern",
    "Variable",
    "is_variable",
]


def __getattr__(name: str):
    """Lazily resolve the columnar and sharding exports on first access."""
    if name in _COLUMNAR_EXPORTS:
        from repro.kg import columnar

        return getattr(columnar, name)
    if name in _SHARDING_EXPORTS:
        from repro.kg import sharding

        return getattr(sharding, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
