"""Scored knowledge-graph substrate.

This package plays the role the PostgreSQL backend played in the paper:
it stores ``(subject, predicate, object)`` triples, each with a non-negative
score, and can return the matches of any triple pattern *sorted by
normalised score in descending order* — the only interface the top-k
operators need.

Public surface:

* :class:`~repro.kg.triple.Triple` — an immutable scored triple.
* :class:`~repro.kg.pattern.TriplePattern` / :class:`~repro.kg.pattern.Variable`
  — SPARQL-style triple patterns.
* :class:`~repro.kg.graph.KnowledgeGraph` — the store itself.
* :mod:`~repro.kg.storage` — TSV/N-triples-style (de)serialisation.
"""

from repro.kg.graph import KnowledgeGraph
from repro.kg.pattern import TriplePattern, Variable, is_variable
from repro.kg.triple import Triple
from repro.kg.namespace import Namespace, RDF_TYPE

__all__ = [
    "KnowledgeGraph",
    "Namespace",
    "RDF_TYPE",
    "Triple",
    "TriplePattern",
    "Variable",
    "is_variable",
]
